test/test_fairness.ml: Alcotest Array Engine Fairness Fixtures Hashtbl List Protocol Spec Stabalgo Stabcore Stabrng
