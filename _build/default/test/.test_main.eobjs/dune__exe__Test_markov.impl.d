test/test_markov.ml: Alcotest Array Fixtures Float List Markov Montecarlo Result Scheduler Stabalgo Stabcore Stabrng Stabstats Statespace
