test/test_checker.ml: Alcotest Array Checker Fixtures Format Int List Protocol Result Spec Stabalgo Stabcore Stabgraph Statespace String
