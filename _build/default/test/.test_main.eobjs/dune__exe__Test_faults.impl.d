test/test_faults.ml: Alcotest Array Checker Faults Format Int List Montecarlo Printf Protocol Scheduler Stabalgo Stabcore Stabgraph Stabrng Stabstats Statespace String Transformer
