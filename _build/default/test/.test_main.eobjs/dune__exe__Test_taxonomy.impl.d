test/test_taxonomy.ml: Alcotest Array Checker Encoding Format Int List Printf Protocol Result Spec Stabalgo Stabcore Stabexp Stabgraph Statespace
