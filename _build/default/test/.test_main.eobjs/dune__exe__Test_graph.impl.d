test/test_graph.ml: Alcotest Array Graph List Printf QCheck QCheck_alcotest Stabgraph Stabrng
