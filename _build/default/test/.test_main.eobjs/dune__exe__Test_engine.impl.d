test/test_engine.ml: Alcotest Array Engine Fixtures Format List Protocol Scheduler Stabalgo Stabcore Stabrng String Trace
