test/test_conflict.ml: Alcotest Array Checker Encoding Engine List Markov Protocol QCheck QCheck_alcotest Result Scheduler Stabalgo Stabcore Stabgraph Stabrng Statespace Transformer
