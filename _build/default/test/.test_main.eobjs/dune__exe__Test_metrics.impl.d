test/test_metrics.ml: Alcotest Array Checker Engine Fixtures Float Format Int List Markov Montecarlo Protocol Scheduler Spec Stabalgo Stabcore Stabgraph Stabrng Stabstats Statespace Transformer
