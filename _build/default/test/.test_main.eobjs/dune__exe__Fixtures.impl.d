test/fixtures.ml: Array Bool Format Fun Int List Protocol Spec Stabcore Stabgraph
