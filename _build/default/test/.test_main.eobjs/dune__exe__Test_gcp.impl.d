test/test_gcp.ml: Alcotest Array Bool Checker Encoding List Markov Protocol Result Spec Stabalgo Stabcore Stabgcp Stabgraph Statespace String Transformer
