test/test_compose.ml: Alcotest Array Bool Checker Compose Encoding Engine Fixtures Format List Protocol Scheduler Spec Stabalgo Stabcore Stabgraph Stabrng Statespace
