test/test_differential.ml: Alcotest Array Checker Expected_verdicts Format List Printf Registry Stabalgo Stabcore Stabexp Statespace String Sys
