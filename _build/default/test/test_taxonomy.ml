(* Tests for the Section 1 taxonomy checks: pseudo-stabilization and
   k-stabilization. *)

open Stabcore

(* Single process, 0 -> 1 -> 2, self-loop at 2. With L = {0, 2} the
   system is pseudo-stabilizing (every execution's suffix sits on the
   2-loop, inside L) but NOT self-stabilizing (L is not closed:
   0 -> 1 leaves it) — the definitional gap the alternating-bit
   protocol exemplifies in the paper's introduction. *)
let funnel () : int Protocol.t =
  let advance : int Protocol.action =
    {
      label = "adv";
      guard = (fun _ _ -> true);
      result = (fun cfg p -> [ (min (cfg.(p) + 1) 2, 1.0) ]);
    }
  in
  {
    Protocol.name = "funnel";
    graph = Stabgraph.Graph.chain 1;
    domain = (fun _ -> [ 0; 1; 2 ]);
    actions = [ advance ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

let test_pseudo_without_self () =
  let p = funnel () in
  let spec = Spec.make ~name:"L02" (fun cfg -> cfg.(0) = 0 || cfg.(0) = 2) in
  let space = Statespace.build p in
  let g = Checker.expand space Statespace.Central in
  let legitimate = Statespace.legitimate_set space spec in
  Alcotest.(check bool) "pseudo-stabilizing" true
    (Result.is_ok (Checker.pseudo_stabilizing space g ~legitimate));
  (* Closure fails, so not self-stabilizing in the full sense. *)
  Alcotest.(check bool) "closure violated" true
    (Result.is_error (Checker.check_closure space g spec))

let test_pseudo_rejects_outside_cycle () =
  (* Token ring: the two-token orbits are non-trivial SCCs outside L. *)
  let n = 4 in
  let p = Stabalgo.Token_ring.make ~n in
  let space = Statespace.build p in
  let g = Checker.expand space Statespace.Distributed in
  let legitimate = Statespace.legitimate_set space (Stabalgo.Token_ring.spec ~n) in
  match Checker.pseudo_stabilizing space g ~legitimate with
  | Error (Checker.Cycle members) ->
    (* Witness states must carry more than one token. *)
    List.iter
      (fun c ->
        if List.length (Stabalgo.Token_ring.token_holders ~n (Statespace.config space c)) < 2
        then Alcotest.fail "witness with one token")
      members
  | Error (Checker.Dead_end _) -> Alcotest.fail "no dead ends in the token ring"
  | Ok () -> Alcotest.fail "token ring is not pseudo-stabilizing"

let test_pseudo_accepts_self_stabilizing () =
  let g5 = Stabgraph.Graph.chain 5 in
  let p = Stabalgo.Centers.make g5 in
  let space = Statespace.build p in
  let g = Checker.expand space Statespace.Distributed in
  let legitimate = Statespace.legitimate_set space (Stabalgo.Centers.spec g5) in
  Alcotest.(check bool) "pseudo holds" true
    (Result.is_ok (Checker.pseudo_stabilizing space g ~legitimate))

let test_pseudo_flags_dead_end () =
  let stuck : int Protocol.t =
    {
      Protocol.name = "stuck";
      graph = Stabgraph.Graph.chain 1;
      domain = (fun _ -> [ 0; 1 ]);
      actions =
        [
          {
            label = "spin";
            guard = (fun cfg p -> cfg.(p) = 1);
            result = (fun _ _ -> [ (1, 1.0) ]);
          };
        ];
      equal = Int.equal;
      pp = Format.pp_print_int;
      randomized = false;
    }
  in
  let space = Statespace.build stuck in
  let g = Checker.expand space Statespace.Central in
  match Checker.pseudo_stabilizing space g ~legitimate:[| false; true |] with
  | Error (Checker.Dead_end 0) -> ()
  | _ -> Alcotest.fail "expected Dead_end 0"

(* --- hamming / k_faulty_set / k_stabilizing --- *)

let test_hamming () =
  let n = 4 in
  let p = Stabalgo.Token_ring.make ~n in
  let space = Statespace.build p in
  Alcotest.(check int) "zero" 0 (Checker.hamming space [| 0; 1; 2; 0 |] [| 0; 1; 2; 0 |]);
  Alcotest.(check int) "two" 2 (Checker.hamming space [| 0; 1; 2; 0 |] [| 1; 1; 2; 1 |])

let test_k_faulty_grows_with_k () =
  let n = 4 in
  let p = Stabalgo.Token_ring.make ~n in
  let space = Statespace.build p in
  let legitimate = Statespace.legitimate_set space (Stabalgo.Token_ring.spec ~n) in
  let count set = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 set in
  let f0 = count (Checker.k_faulty_set space ~legitimate ~k:0) in
  let f1 = count (Checker.k_faulty_set space ~legitimate ~k:1) in
  let f4 = count (Checker.k_faulty_set space ~legitimate ~k:4) in
  Alcotest.(check int) "k=0 is L itself" (count legitimate) f0;
  Alcotest.(check bool) "monotone" true (f0 < f1 && f1 <= f4);
  Alcotest.(check int) "k=n is everything" (Statespace.count space) f4

let test_k_faulty_matches_hamming () =
  (* Cross-validation against the brute-force definition. *)
  let n = 4 in
  let p = Stabalgo.Token_ring.make ~n in
  let space = Statespace.build p in
  let legitimate = Statespace.legitimate_set space (Stabalgo.Token_ring.spec ~n) in
  let faulty = Checker.k_faulty_set space ~legitimate ~k:1 in
  let enc = Statespace.encoding space in
  Encoding.iter enc (fun c cfg ->
      let brute =
        let found = ref false in
        Array.iteri
          (fun c' lg ->
            if lg && Checker.hamming space cfg (Statespace.config space c') <= 1 then
              found := true)
          legitimate;
        !found
      in
      if brute <> faulty.(c) then Alcotest.failf "mismatch at %d" c;
      ignore cfg)

let test_k_stabilization_hierarchy () =
  (* Self-stabilizing protocols are k-stabilizing for every k. *)
  let g4 = Stabgraph.Graph.ring 4 in
  let p = Stabalgo.Coloring.make g4 in
  let space = Statespace.build p in
  let g = Checker.expand space Statespace.Central in
  let legitimate = Statespace.legitimate_set space (Stabalgo.Coloring.spec g4) in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "coloring central %d-stabilizing" k)
        true
        (Result.is_ok (Checker.k_stabilizing space g ~legitimate ~k)))
    [ 0; 1; 2; 4 ];
  (* The same protocol under the distributed class is not even
     1-stabilizing: one corrupted color can start the mirror dance. *)
  let gd = Checker.expand space Statespace.Distributed in
  Alcotest.(check bool) "0-stabilizing (L is closed and silent)" true
    (Result.is_ok (Checker.k_stabilizing space gd ~legitimate ~k:0));
  Alcotest.(check bool) "not 1-stabilizing distributed" false
    (Result.is_ok (Checker.k_stabilizing space gd ~legitimate ~k:1))

let test_dijkstra_k_threshold () =
  (* The checker finds the tight threshold K = N - 1 (one below
     Dijkstra's own sufficient K >= N). *)
  List.iter
    (fun (n, k, expected) ->
      let p = Stabalgo.Dijkstra_kstate.make ~n ~k () in
      let space = Statespace.build p in
      let g = Checker.expand space Statespace.Central in
      let legitimate = Statespace.legitimate_set space (Stabalgo.Dijkstra_kstate.spec ~n) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d k=%d" n k)
        expected
        (Result.is_ok (Checker.certain_convergence space g ~legitimate)))
    [ (4, 2, false); (4, 3, true); (5, 3, false); (5, 4, true) ]

let test_taxonomy_table () =
  let rows, _ = Stabexp.Portfolio.taxonomy () in
  (* On closed-L finite systems pseudo coincides with certain
     convergence — check the implication self => pseudo => (weak
     columns all true here). *)
  List.iter
    (fun r ->
      if r.Stabexp.Portfolio.self_t && not r.Stabexp.Portfolio.pseudo then
        Alcotest.failf "%s: self without pseudo" r.Stabexp.Portfolio.algorithm_t;
      if r.Stabexp.Portfolio.one_stabilizing && not r.Stabexp.Portfolio.weak_t then
        Alcotest.failf "%s: 1-stab without weak" r.Stabexp.Portfolio.algorithm_t)
    rows

let suite =
  [
    Alcotest.test_case "pseudo without self" `Quick test_pseudo_without_self;
    Alcotest.test_case "pseudo rejects outside cycles" `Quick test_pseudo_rejects_outside_cycle;
    Alcotest.test_case "pseudo accepts self-stabilizing" `Quick test_pseudo_accepts_self_stabilizing;
    Alcotest.test_case "pseudo flags dead ends" `Quick test_pseudo_flags_dead_end;
    Alcotest.test_case "hamming" `Quick test_hamming;
    Alcotest.test_case "k-faulty monotone" `Quick test_k_faulty_grows_with_k;
    Alcotest.test_case "k-faulty matches hamming" `Quick test_k_faulty_matches_hamming;
    Alcotest.test_case "k-stabilization hierarchy" `Quick test_k_stabilization_hierarchy;
    Alcotest.test_case "dijkstra threshold" `Quick test_dijkstra_k_threshold;
    Alcotest.test_case "taxonomy table" `Slow test_taxonomy_table;
  ]
