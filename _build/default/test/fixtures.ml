(* Shared miniature protocols for the core-library tests. *)

open Stabcore

(* Two processes on an edge; each holds 0/1/2 and copies its neighbor's
   value + 1 mod 3 whenever the values are equal. Deterministic, with
   heterogeneous behaviour useful for step tests. *)
let mod3_protocol () : int Protocol.t =
  let bump : int Protocol.action =
    {
      label = "bump";
      guard = (fun cfg p -> cfg.(p) = cfg.(1 - p));
      result = (fun cfg p -> [ ((cfg.(1 - p) + 1) mod 3, 1.0) ]);
    }
  in
  {
    Protocol.name = "mod3";
    graph = Stabgraph.Graph.chain 2;
    domain = (fun _ -> [ 0; 1; 2 ]);
    actions = [ bump ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

(* A 1-process protocol with a P-variable: flips a biased coin until it
   lands on 2 (absorbing). *)
let coin_protocol ?(p_stop = 0.25) () : int Protocol.t =
  let toss : int Protocol.action =
    {
      label = "toss";
      guard = (fun cfg p -> cfg.(p) <> 2);
      result = (fun _ _ -> [ (0, (1.0 -. p_stop) /. 2.0); (1, (1.0 -. p_stop) /. 2.0); (2, p_stop) ]);
    }
  in
  {
    Protocol.name = "coin";
    graph = Stabgraph.Graph.chain 1;
    domain = (fun _ -> [ 0; 1; 2 ]);
    actions = [ toss ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = true;
  }

(* Three processes on a chain with distinct domain sizes, for encoding
   tests: domain of p has p + 2 values. *)
let ragged_domains () : int Protocol.t =
  let nudge : int Protocol.action =
    {
      label = "nudge";
      guard = (fun cfg p -> cfg.(p) = 0 && p = 0);
      result = (fun _ _ -> [ (1, 1.0) ]);
    }
  in
  {
    Protocol.name = "ragged";
    graph = Stabgraph.Graph.chain 3;
    domain = (fun p -> List.init (p + 2) Fun.id);
    actions = [ nudge ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

(* Two always-enabled processes, each flipping its own bit — a pure
   oscillator used to exercise fairness analyses. *)
let flip2 () : bool Protocol.t =
  let flip : bool Protocol.action =
    {
      label = "flip";
      guard = (fun _ _ -> true);
      result = (fun cfg p -> [ (not cfg.(p), 1.0) ]);
    }
  in
  {
    Protocol.name = "flip2";
    graph = Stabgraph.Graph.chain 2;
    domain = (fun _ -> [ false; true ]);
    actions = [ flip ];
    equal = Bool.equal;
    pp = Format.pp_print_bool;
    randomized = false;
  }

let coin_spec = Spec.make ~name:"reached-2" (fun cfg -> cfg.(0) = 2)

let mod3_spec : int Spec.t =
  Spec.make ~name:"distinct" (fun cfg -> cfg.(0) <> cfg.(1))
