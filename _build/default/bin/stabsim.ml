(* stabsim: command-line front end for the stabilization laboratory.

   Subcommands mirror the library pipeline: trace (simulate one
   execution), check (exhaustive stabilization verdicts), markov
   (probability-1 convergence and expected hitting times), montecarlo
   (sampled stabilization times), figures / theorems / experiments
   (paper reproduction reports). *)

open Cmdliner

(* --- shared arguments --- *)

let protocol_arg =
  let doc =
    Printf.sprintf "Protocol name. One of: %s." (String.concat ", " Stabexp.Registry.names)
  in
  Arg.(value & opt string "token-ring" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let topology_arg =
  let doc =
    "Topology: ring:N (or a bare integer), chain:N, star:N, or random:N:SEED \
     (random tree). Ring protocols need rings; tree protocols need trees."
  in
  Arg.(value & opt string "ring:5" & info [ "t"; "topology" ] ~docv:"TOPO" ~doc)

let transformed_arg =
  let doc = "Apply the Section 4 coin-toss transformer to the protocol." in
  Arg.(value & flag & info [ "transformed" ] ~doc)

let seed_arg =
  let doc = "PRNG seed; equal seeds reproduce runs exactly." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let steps_arg =
  let doc = "Maximum number of steps to simulate." in
  Arg.(value & opt int 50 & info [ "steps" ] ~docv:"STEPS" ~doc)

let scheduler_arg =
  let doc =
    "Scheduler: central-random, distributed-random, synchronous, central-first, \
     round-robin."
  in
  Arg.(value & opt string "distributed-random" & info [ "s"; "scheduler" ] ~docv:"SCHED" ~doc)

let sched_class_arg =
  let doc = "Scheduler class for exhaustive checking: central, distributed, synchronous." in
  Arg.(value & opt string "distributed" & info [ "class" ] ~docv:"CLASS" ~doc)

let quick_arg =
  let doc = "Keep experiment instance sizes small (fast); disable for the full sweep." in
  Arg.(value & opt bool true & info [ "quick" ] ~docv:"BOOL" ~doc)

let scheduler_of_string : type a. string -> a Stabcore.Scheduler.t = function
  | "central-random" -> Stabcore.Scheduler.central_random ()
  | "distributed-random" -> Stabcore.Scheduler.distributed_random ()
  | "synchronous" -> Stabcore.Scheduler.synchronous ()
  | "central-first" -> Stabcore.Scheduler.central_first ()
  | "round-robin" -> Stabcore.Scheduler.round_robin ()
  | other -> invalid_arg ("unknown scheduler " ^ other)

let sched_class_of_string = function
  | "central" -> Stabcore.Statespace.Central
  | "distributed" -> Stabcore.Statespace.Distributed
  | "synchronous" -> Stabcore.Statespace.Synchronous
  | other -> invalid_arg ("unknown scheduler class " ^ other)

let randomization_of_string = function
  | "central-random" | "central" -> Stabcore.Markov.Central_uniform
  | "distributed-random" | "distributed" -> Stabcore.Markov.Distributed_uniform
  | "synchronous" | "sync" -> Stabcore.Markov.Sync
  | other -> invalid_arg ("unknown randomization " ^ other)

let wrap f = try Ok (f ()) with Invalid_argument msg | Failure msg -> Error (`Msg msg)

let file_arg =
  let doc =
    "Load the protocol from a .gcp file instead of the built-in registry (the \
     topology argument still applies)."
  in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

(* Resolve the protocol either from a GCP file or from the registry. *)
let resolve ~protocol ~topology ~transformed ~file =
  match file with
  | None -> Stabexp.Registry.find ~name:protocol ~topology ~transformed ()
  | Some path ->
    let program =
      match Stabgcp.Gcp.load path with Ok p -> p | Error m -> failwith m
    in
    let graph = Stabexp.Registry.topology_of_string topology in
    let base_protocol, spec =
      match Stabgcp.Gcp.instantiate program graph with
      | Ok pair -> pair
      | Error m -> failwith m
    in
    let label =
      Printf.sprintf "%s(%s)" (Stabgcp.Gcp.name program) topology
    in
    let describe = Printf.sprintf "loaded from %s" path in
    if transformed then
      Stabexp.Registry.Entry
        {
          label = "trans(" ^ label ^ ")";
          protocol = Stabcore.Transformer.randomize base_protocol;
          spec = Stabcore.Transformer.lift_spec spec;
          describe;
        }
    else Stabexp.Registry.Entry { label; protocol = base_protocol; spec; describe }

(* --- trace --- *)

let trace_cmd =
  let run protocol topology transformed file seed steps scheduler =
    wrap (fun () ->
        let (Stabexp.Registry.Entry e) = resolve ~protocol ~topology ~transformed ~file in
        let rng = Stabrng.Rng.create seed in
        let sched = scheduler_of_string scheduler in
        let init = Stabcore.Protocol.random_config rng e.protocol in
        let result =
          Stabcore.Engine.run ~stop_on:e.spec ~max_steps:steps rng e.protocol sched ~init
        in
        Format.printf "%s under %s (seed %d)@.%s@.@.%a@.@.stop: %s after %d steps@."
          e.label scheduler seed e.describe
          (Stabcore.Trace.pp e.protocol)
          result.Stabcore.Engine.trace
          (match result.Stabcore.Engine.stop with
          | Stabcore.Engine.Converged -> "converged to the legitimate set"
          | Stabcore.Engine.Terminal -> "reached a terminal configuration"
          | Stabcore.Engine.Exhausted -> "step budget exhausted")
          result.Stabcore.Engine.steps)
  in
  let term =
    Term.(
      term_result
        (const run $ protocol_arg $ topology_arg $ transformed_arg $ file_arg $ seed_arg
       $ steps_arg $ scheduler_arg))
  in
  Cmd.v (Cmd.info "trace" ~doc:"Simulate one execution and print its trace.") term

(* --- check --- *)

let check_cmd =
  let run protocol topology transformed file cls =
    wrap (fun () ->
        let (Stabexp.Registry.Entry e) = resolve ~protocol ~topology ~transformed ~file in
        let cls = sched_class_of_string cls in
        let space = Stabcore.Statespace.build e.protocol in
        let v = Stabcore.Checker.analyze space cls e.spec in
        Format.printf "%s under the %a class (%d configurations)@.%s@.@.%a@.@."
          e.label Stabcore.Statespace.pp_sched_class cls
          (Stabcore.Statespace.count space)
          e.describe Stabcore.Checker.pp_verdict v;
        Format.printf "verdicts:@.  weak-stabilizing: %b@.  self-stabilizing (unfair): %b@.  \
                       self-stabilizing (weakly fair): %b@.  self-stabilizing (strongly fair): %b@."
          (Stabcore.Checker.weak_stabilizing v)
          (Stabcore.Checker.self_stabilizing v)
          (Stabcore.Checker.self_stabilizing_weakly_fair v)
          (Stabcore.Checker.self_stabilizing_strongly_fair v))
  in
  let term =
    Term.(
      term_result
        (const run $ protocol_arg $ topology_arg $ transformed_arg $ file_arg
       $ sched_class_arg))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Exhaustively decide weak/self stabilization (small instances).")
    term

(* --- markov --- *)

let markov_cmd =
  let run protocol topology transformed file randomization =
    wrap (fun () ->
        let (Stabexp.Registry.Entry e) = resolve ~protocol ~topology ~transformed ~file in
        let r = randomization_of_string randomization in
        let space = Stabcore.Statespace.build e.protocol in
        let legitimate = Stabcore.Statespace.legitimate_set space e.spec in
        let chain = Stabcore.Markov.of_space space r in
        (match Stabcore.Markov.converges_with_prob_one chain ~legitimate with
        | Ok () ->
          let times = Stabcore.Markov.expected_hitting_times chain ~legitimate in
          let mean =
            Array.fold_left ( +. ) 0.0 times /. float_of_int (Array.length times)
          in
          let worst = Array.fold_left Float.max 0.0 times in
          Format.printf
            "%s: converges with probability 1 under %s@.expected stabilization time: \
             mean %.4f steps, worst initial configuration %.4f steps@."
            e.label randomization mean worst
        | Error c ->
          Format.printf
            "%s: does NOT converge with probability 1 under %s@.counterexample \
             configuration (code %d): %a@."
            e.label randomization c
            (Stabcore.Protocol.pp_config e.protocol)
            (Stabcore.Statespace.config space c)))
  in
  let randomization_arg =
    let doc = "Randomized daemon: central-random, distributed-random, synchronous." in
    Arg.(value & opt string "distributed-random" & info [ "r"; "randomization" ] ~docv:"R" ~doc)
  in
  let term =
    Term.(
      term_result
        (const run $ protocol_arg $ topology_arg $ transformed_arg $ file_arg
       $ randomization_arg))
  in
  Cmd.v
    (Cmd.info "markov"
       ~doc:"Probability-1 convergence and exact expected stabilization times.")
    term

(* --- montecarlo --- *)

let montecarlo_cmd =
  let run protocol topology transformed file seed scheduler runs max_steps =
    wrap (fun () ->
        let (Stabexp.Registry.Entry e) = resolve ~protocol ~topology ~transformed ~file in
        let rng = Stabrng.Rng.create seed in
        let sched = scheduler_of_string scheduler in
        let result =
          Stabcore.Montecarlo.estimate ~runs ~max_steps rng e.protocol sched e.spec
        in
        Format.printf "%s under %s: %d runs from uniform initial configurations@.%a@."
          e.label scheduler runs Stabcore.Montecarlo.pp_result result)
  in
  let runs_arg =
    Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"RUNS" ~doc:"Number of sampled runs.")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-run step budget before declaring a timeout.")
  in
  let term =
    Term.(
      term_result
        (const run $ protocol_arg $ topology_arg $ transformed_arg $ file_arg $ seed_arg
       $ scheduler_arg $ runs_arg $ max_steps_arg))
  in
  Cmd.v (Cmd.info "montecarlo" ~doc:"Sampled stabilization-time estimates.") term

(* --- reach (on-the-fly analysis) --- *)

let reach_cmd =
  let run protocol topology transformed file cls seed inits max_states =
    wrap (fun () ->
        let (Stabexp.Registry.Entry e) = resolve ~protocol ~topology ~transformed ~file in
        let cls = sched_class_of_string cls in
        let space = Stabcore.Statespace.build ~max_configs:max_int e.protocol in
        let rng = Stabrng.Rng.create seed in
        let init_configs =
          List.init inits (fun _ -> Stabcore.Protocol.random_config rng e.protocol)
        in
        let show (verdict, stats) what =
          Format.printf "%s: %s (explored %d configurations, %d edges%s)@." what
            (match verdict with
            | Stabcore.Onthefly.Converges -> "HOLDS on the reachable sub-system"
            | Stabcore.Onthefly.Counterexample code ->
              Format.asprintf "FAILS; counterexample %a"
                (Stabcore.Protocol.pp_config e.protocol)
                (Stabcore.Statespace.config space code)
            | Stabcore.Onthefly.Unknown -> "UNKNOWN (state budget exhausted)")
            stats.Stabcore.Onthefly.explored stats.Stabcore.Onthefly.edges
            (if stats.Stabcore.Onthefly.complete then "" else "; incomplete")
        in
        Format.printf "%s under the %a class, %d random initial configurations (seed %d)@."
          e.label Stabcore.Statespace.pp_sched_class cls inits seed;
        show
          (Stabcore.Onthefly.possible_convergence_from ~max_states space cls e.spec
             ~inits:init_configs)
          "possible convergence (weak)";
        show
          (Stabcore.Onthefly.certain_convergence_from ~max_states space cls e.spec
             ~inits:init_configs)
          "certain convergence (self)")
  in
  let inits_arg =
    Arg.(
      value & opt int 5
      & info [ "inits" ] ~docv:"K" ~doc:"Number of random initial configurations.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-states" ] ~docv:"N" ~doc:"On-the-fly exploration budget.")
  in
  let term =
    Term.(
      term_result
        (const run $ protocol_arg $ topology_arg $ transformed_arg $ file_arg
       $ sched_class_arg $ seed_arg $ inits_arg $ max_states_arg))
  in
  Cmd.v
    (Cmd.info "reach"
       ~doc:
        "On-the-fly convergence analysis from random initial configurations \
         (scales far beyond exhaustive checking).")
    term

(* --- orbit (synchronous census) --- *)

let orbit_cmd =
  let run protocol topology transformed file =
    wrap (fun () ->
        let (Stabexp.Registry.Entry e) = resolve ~protocol ~topology ~transformed ~file in
        let space = Stabcore.Statespace.build e.protocol in
        let census = Stabcore.Checker.sync_orbit_census space in
        Format.printf
          "%s: synchronous limit-cycle census over %d configurations@.\
           (length 0 = reaches a terminal configuration)@.@."
          e.label (Stabcore.Statespace.count space);
        List.iter
          (fun (length, count) -> Format.printf "  cycle length %d: %d configurations@." length count)
          census)
  in
  let term =
    Term.(term_result (const run $ protocol_arg $ topology_arg $ transformed_arg $ file_arg))
  in
  Cmd.v
    (Cmd.info "orbit"
       ~doc:"Census of synchronous limit cycles (how prevalent Figure-3 oscillations are).")
    term

(* --- faults (recovery profiling) --- *)

let faults_cmd =
  let run protocol topology transformed file seed faults runs =
    wrap (fun () ->
        let (Stabexp.Registry.Entry e) = resolve ~protocol ~topology ~transformed ~file in
        let rng = Stabrng.Rng.create seed in
        (* Find a legitimate starting configuration by simulation. *)
        let start =
          let rec hunt attempts =
            if attempts = 0 then
              failwith "could not reach a legitimate configuration to corrupt"
            else begin
              let init = Stabcore.Protocol.random_config rng e.protocol in
              let r =
                Stabcore.Engine.run ~record:false ~stop_on:e.spec ~max_steps:100_000 rng
                  e.protocol
                  (Stabcore.Scheduler.central_random ())
                  ~init
              in
              if r.Stabcore.Engine.stop = Stabcore.Engine.Converged then r.Stabcore.Engine.final
              else hunt (attempts - 1)
            end
          in
          hunt 50
        in
        Format.printf "%s: recovery from injected faults (central randomized daemon)@."
          e.label;
        Format.printf "stabilized start: %a@.@." (Stabcore.Protocol.pp_config e.protocol) start;
        List.iter
          (fun k ->
            let profile =
              Stabcore.Faults.recovery_profile ~runs ~max_steps:1_000_000 rng e.protocol
                (Stabcore.Scheduler.central_random ())
                e.spec ~from:start ~faults:k
            in
            Format.printf "k = %d faults: %a@." k Stabcore.Montecarlo.pp_result profile)
          faults)
  in
  let faults_list_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3 ]
      & info [ "k" ] ~docv:"K,K,..." ~doc:"Fault counts to profile.")
  in
  let runs_arg =
    Arg.(value & opt int 500 & info [ "runs" ] ~docv:"RUNS" ~doc:"Runs per fault count.")
  in
  let term =
    Term.(
      term_result
        (const run $ protocol_arg $ topology_arg $ transformed_arg $ file_arg $ seed_arg
       $ faults_list_arg $ runs_arg))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Measure recovery time after injecting k memory-corruption faults.")
    term

(* --- figures / theorems / experiments --- *)

let figures_cmd =
  let run () =
    wrap (fun () ->
        print_string (Stabexp.Figures.fig1 ()).Stabexp.Figures.rendering;
        print_newline ();
        print_string (Stabexp.Figures.fig2 ()).Stabexp.Figures.rendering;
        print_newline ();
        print_string (Stabexp.Figures.fig3 ()).Stabexp.Figures.rendering)
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce the paper's Figures 1-3 (example executions).")
    Term.(term_result (const run $ const ()))

let theorems_cmd =
  let run id =
    wrap (fun () ->
        let results = Stabexp.Theorems.all () in
        let selected =
          match id with
          | None -> results
          | Some id ->
            List.filter
              (fun r -> String.lowercase_ascii r.Stabexp.Theorems.id = String.lowercase_ascii id)
              results
        in
        if selected = [] then failwith "no such theorem id (use e.g. T2 or T8/T9)";
        List.iter
          (fun r ->
            Stabexp.Report.print (Stabexp.Theorems.report r);
            Printf.printf "   => %s\n\n"
              (if Stabexp.Theorems.all_hold r then "VERIFIED" else "FAILED"))
          selected)
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"Check a single theorem (T1, T2, T3, T4, T6, T7, T8/T9).")
  in
  Cmd.v
    (Cmd.info "theorems" ~doc:"Machine-check the paper's theorems on small instances.")
    Term.(term_result (const run $ id_arg))

let experiments_cmd =
  let run quick seed =
    wrap (fun () ->
        let _, t1 = Stabexp.Quantitative.e1_token_sweep ~seed ~quick () in
        Stabexp.Report.print t1;
        let _, t2 = Stabexp.Quantitative.e2_leader_sweep ~seed:(seed + 1) ~quick () in
        Stabexp.Report.print t2;
        let _, t3 = Stabexp.Quantitative.e3_transformer_overhead ~quick () in
        Stabexp.Report.print t3;
        let _, t4 = Stabexp.Quantitative.e4_scheduler_comparison ~quick () in
        Stabexp.Report.print t4;
        Stabexp.Report.print (Stabexp.Quantitative.e5_convergence_radius ~quick ());
        Stabexp.Report.print (Stabexp.Quantitative.e6_steps_vs_rounds ~seed:(seed + 2) ~quick ());
        Stabexp.Report.print (Stabexp.Quantitative.e7_convergence_curves ~quick ());
        Stabexp.Report.print (Stabexp.Quantitative.e9_sync_orbit_census ~quick ());
        Stabexp.Report.print
          (Stabexp.Quantitative.e10_fault_recovery ~seed:(seed + 3) ~quick ()))
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run the quantitative experiments E1-E7 (expected stabilization times).")
    Term.(term_result (const run $ quick_arg $ seed_arg))

let portfolio_cmd =
  let run () =
    wrap (fun () ->
        let _, table = Stabexp.Portfolio.classify () in
        Stabexp.Report.print table;
        let _, taxonomy = Stabexp.Portfolio.taxonomy () in
        Stabexp.Report.print taxonomy;
        Stabexp.Report.print (Stabexp.Portfolio.dijkstra_k_threshold ()))
  in
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:
        "Classify every bundled algorithm under every scheduler class (tables P1, P2, E8).")
    Term.(term_result (const run $ const ()))

let main =
  let doc = "stabilization laboratory: weak vs. self vs. probabilistic stabilization" in
  let info = Cmd.info "stabsim" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      trace_cmd;
      check_cmd;
      markov_cmd;
      montecarlo_cmd;
      figures_cmd;
      theorems_cmd;
      experiments_cmd;
      portfolio_cmd;
      reach_cmd;
      orbit_cmd;
      faults_cmd;
    ]

let () = exit (Cmd.eval main)
