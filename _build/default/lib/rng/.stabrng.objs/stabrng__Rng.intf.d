lib/rng/rng.mli:
