(* SplitMix64 is used to expand seeds and to split streams; xoshiro256++
   generates the bulk output. Reference: Blackman & Vigna, public domain. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* One SplitMix64 step: advance the counter, mix it out. *)
let splitmix_next counter =
  let counter = Int64.add counter golden_gamma in
  (counter, mix64 counter)

let seed_state seed =
  let c = Int64.of_int seed in
  let c, s0 = splitmix_next c in
  let c, s1 = splitmix_next c in
  let c, s2 = splitmix_next c in
  let _, s3 = splitmix_next c in
  (* xoshiro must not start from the all-zero state. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = golden_gamma; s1 = mix64 golden_gamma; s2 = 1L; s3 = 2L }
  else { s0; s1; s2; s3 }

let create seed = seed_state seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Draw 64 bits, remix them through SplitMix64 to seed the child. *)
  let raw = bits64 t in
  let c = raw in
  let c, s0 = splitmix_next c in
  let c, s1 = splitmix_next c in
  let c, s2 = splitmix_next c in
  let _, s3 = splitmix_next c in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then seed_state 1
  else { s0; s1; s2; s3 }

let bits30 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling over 30-bit draws for exact uniformity. *)
    let mask_draws () =
      let rec go () =
        let r = bits30 t in
        let v = r mod bound in
        if r - v > (1 lsl 30) - bound then go () else v
      in
      go ()
    in
    mask_draws ()
  end
  else begin
    let rec go () =
      let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
      let v = r mod bound in
      if r - v > (1 lsl 62) - bound then go () else v
    in
    go ()
  end

let float t =
  let mant = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  mant *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t < p

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_list t items =
  match items with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth items (int t (List.length items))

let pick_weighted t dist =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 dist in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: non-positive total weight";
  let target = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty distribution"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if acc +. w > target then v else go (acc +. w) rest
  in
  go 0.0 dist

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let subset t items = List.filter (fun _ -> bool t) items

let nonempty_subset t items =
  match items with
  | [] -> invalid_arg "Rng.nonempty_subset: empty list"
  | [ x ] -> [ x ]
  | _ ->
    (* Resample until non-empty: uniform over the 2^n - 1 non-empty
       subsets because each subset is equally likely each round. *)
    let rec go () =
      match subset t items with [] -> go () | chosen -> chosen
    in
    go ()
