(** Deterministic, splittable pseudo-random number generation.

    The simulation experiments of the paper (randomized schedulers of
    Definition 6, P-variables of Section 2, the Section 4 transformer)
    need reproducible randomness: every experiment is parameterized by a
    seed, and independent streams must be derivable for parallel sweeps
    without correlation. This module implements SplitMix64 for seeding
    and stream splitting and xoshiro256++ as the bulk generator, both
    from the public-domain reference algorithms by Blackman and Vigna. *)

type t
(** A mutable generator state. Not thread-safe; split instead of
    sharing. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives a fresh generator whose stream is statistically
    independent from the continuation of [t]. Both generators advance. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays the same
    stream as [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform over [0, bound). Requires [bound > 0].
    Uses rejection sampling, so the distribution is exactly uniform. *)

val float : t -> float
(** Uniform over [0, 1), with 53 bits of precision. *)

val bool : t -> bool
(** A fair coin — the paper's [Rand(true, false)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_weighted : t -> ('a * float) list -> 'a
(** [pick_weighted t dist] samples from a finite distribution given as
    (value, weight) pairs with positive total weight. Weights need not
    be normalized. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val nonempty_subset : t -> 'a list -> 'a list
(** [nonempty_subset t items] is a uniformly random non-empty subset of
    a non-empty [items] — the choice a distributed randomized scheduler
    makes among enabled processes. Preserves the input order. *)

val subset : t -> 'a list -> 'a list
(** Uniformly random (possibly empty) subset. *)
