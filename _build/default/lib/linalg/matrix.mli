(** Dense float matrices and linear solving.

    Sized for the absorbing-Markov-chain systems of the stabilization
    analysis (a few thousand configurations): plain row-major arrays
    and Gaussian elimination with partial pivoting are enough and keep
    the whole pipeline dependency-free. *)

type t
(** A mutable dense matrix. *)

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. Dimensions must be positive. *)

val identity : int -> t

val of_rows : float array array -> t
(** Copies a non-ragged, non-empty array of rows. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t

val mul : t -> t -> t
(** Matrix product; dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** Matrix-vector product. *)

val transpose : t -> t

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. [a] must be square and non-singular (within [1e-12]
    pivot tolerance) and is not modified. Raises [Failure] on a
    (numerically) singular system. *)

val solve_many : t -> t -> t
(** [solve_many a b] solves [a x = b] column-wise. *)

val max_abs_diff : t -> t -> float
(** Infinity-norm distance between two same-shaped matrices. *)

val pp : Format.formatter -> t -> unit
