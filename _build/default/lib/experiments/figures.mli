(** Reproductions of the paper's three figures (example executions).

    Each function both computes the underlying object — so benches and
    tests can assert on it — and renders a human-readable account. *)

(** {1 Figure 1: token circulation from a legitimate configuration} *)

type fig1 = {
  ring_size : int;
  modulus : int;  (** the paper's m_N *)
  holders : int list;  (** token holder after each step, starting config first *)
  rendering : string;
}

val fig1 : ?steps:int -> unit -> fig1
(** Replays the paper's example (N = 6, m = 4): one token walking the
    ring. [steps] defaults to 12 (two revolutions). *)

(** {1 Figure 2: a converging execution of Algorithm 2} *)

type fig2 = {
  steps : int;
  final_leader : int;
  final_is_lc : bool;
  rendering : string;
}

val fig2 : unit -> fig2
(** Replays the five-step scripted convergence on the 8-process tree
    (see {!Stabalgo.Leader_tree.fig2_script}). *)

(** {1 Figure 3: synchronous divergence of Algorithm 2} *)

type fig3 = {
  prefix_length : int;
  cycle_length : int;
  ever_legitimate : bool;
  rendering : string;
}

val fig3 : unit -> fig3
(** Computes the synchronous lasso from the mutual-pair configuration
    on the 4-chain: period 2, never legitimate. *)
