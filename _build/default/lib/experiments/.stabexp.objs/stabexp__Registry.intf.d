lib/experiments/registry.mli: Stabcore Stabgraph
