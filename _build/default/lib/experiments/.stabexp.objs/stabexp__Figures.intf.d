lib/experiments/figures.mli:
