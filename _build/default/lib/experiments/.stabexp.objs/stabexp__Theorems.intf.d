lib/experiments/theorems.mli: Report
