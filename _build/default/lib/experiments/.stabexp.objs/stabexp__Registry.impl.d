lib/experiments/registry.ml: Printf Protocol Spec Stabalgo Stabcore Stabgraph Stabrng String Transformer
