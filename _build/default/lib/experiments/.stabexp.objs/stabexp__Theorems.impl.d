lib/experiments/theorems.ml: Array Checker Encoding Engine Fairness Hashtbl List Markov Printf Protocol Report Result Spec Stabalgo Stabcore Stabgraph Stabrng Statespace Transformer
