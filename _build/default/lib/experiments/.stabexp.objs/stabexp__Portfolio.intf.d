lib/experiments/portfolio.mli: Report
