lib/experiments/report.mli:
