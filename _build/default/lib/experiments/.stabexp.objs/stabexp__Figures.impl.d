lib/experiments/figures.ml: Checker Engine Format List Printf Protocol Stabalgo Stabcore Stabgraph Statespace Trace
