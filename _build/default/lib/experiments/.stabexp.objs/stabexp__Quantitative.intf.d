lib/experiments/quantitative.mli: Report
