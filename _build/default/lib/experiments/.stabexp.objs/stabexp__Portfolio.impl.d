lib/experiments/portfolio.ml: Checker Format List Markov Registry Report Result Stabalgo Stabcore Statespace
