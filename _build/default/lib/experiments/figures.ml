open Stabcore

type fig1 = {
  ring_size : int;
  modulus : int;
  holders : int list;
  rendering : string;
}

let fig1 ?(steps = 12) () =
  let n = 6 in
  let p = Stabalgo.Token_ring.make ~n in
  let init = Stabalgo.Token_ring.legitimate_config ~n in
  let script = List.init steps (fun i -> [ i mod n ]) in
  let trace = Engine.replay p ~init script in
  let holders =
    List.map
      (fun cfg ->
        match Stabalgo.Token_ring.token_holders ~n cfg with
        | [ h ] -> h
        | hs -> invalid_arg (Printf.sprintf "fig1: %d tokens" (List.length hs)))
      (Engine.configs trace)
  in
  {
    ring_size = n;
    modulus = Stabalgo.Token_ring.smallest_non_divisor n;
    holders;
    rendering =
      Format.asprintf
        "Figure 1 - Algorithm 1 on the %d-ring (m = %d), one token circulating:@.%a@."
        n
        (Stabalgo.Token_ring.smallest_non_divisor n)
        (Trace.pp p) trace;
  }

type fig2 = {
  steps : int;
  final_leader : int;
  final_is_lc : bool;
  rendering : string;
}

let fig2 () =
  let g = Stabalgo.Leader_tree.fig2_tree in
  let p = Stabalgo.Leader_tree.make g in
  let trace =
    Engine.replay p ~init:Stabalgo.Leader_tree.fig2_initial Stabalgo.Leader_tree.fig2_script
  in
  let final = Engine.final_config trace in
  let leader =
    match Stabalgo.Leader_tree.leaders final with
    | [ l ] -> l
    | ls -> invalid_arg (Printf.sprintf "fig2: %d leaders" (List.length ls))
  in
  {
    steps = List.length trace.Engine.events;
    final_leader = leader;
    final_is_lc = Stabalgo.Leader_tree.is_lc g final;
    rendering =
      Format.asprintf
        "Figure 2 - Algorithm 2 converging on the 8-process tree (states are parent@.\
         pointers, '_' marks a leader); process ids are the paper's P(i+1):@.%a@."
        (Trace.pp p) trace;
  }

type fig3 = {
  prefix_length : int;
  cycle_length : int;
  ever_legitimate : bool;
  rendering : string;
}

let fig3 () =
  let g = Stabgraph.Graph.chain 4 in
  let p = Stabalgo.Leader_tree.make g in
  let space = Statespace.build p in
  let init = [| Stabalgo.Leader_tree.Parent 0; Parent 0; Parent 1; Parent 0 |] in
  let prefix, cycle = Checker.synchronous_lasso space ~init:(Statespace.code space init) in
  let ever_legitimate =
    List.exists
      (fun code -> Stabalgo.Leader_tree.is_lc g (Statespace.config space code))
      (prefix @ cycle)
  in
  let pp_codes fmt codes =
    List.iter
      (fun code ->
        Format.fprintf fmt "  %a@." (Protocol.pp_config p) (Statespace.config space code))
      codes
  in
  {
    prefix_length = List.length prefix;
    cycle_length = List.length cycle;
    ever_legitimate;
    rendering =
      Format.asprintf
        "Figure 3 - Algorithm 2 on the 4-chain under the synchronous daemon:@.\
         the execution is a pure cycle of period %d that never elects a leader.@.\
         Cycle configurations (parent pointers by local index, '_' = leader):@.%a"
        (List.length cycle) pp_codes cycle;
  }
