lib/graph/graph.ml: Array Format Fun Hashtbl List Queue Stabrng String
