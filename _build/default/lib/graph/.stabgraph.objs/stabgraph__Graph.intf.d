lib/graph/graph.mli: Format Stabrng
