type token =
  | INT of int
  | IDENT of string
  | KW of string
  | SYM of string
  | EOF

type lexeme = { token : token; pos : Ast.position }

exception Error of string * Ast.position

let keywords =
  [
    "protocol";
    "var";
    "bool";
    "action";
    "legitimate";
    "terminal";
    "all";
    "true";
    "false";
    "degree";
    "forall";
    "exists";
    "count";
    "first";
    "in";
    "with";
    "if";
    "then";
    "else";
    "is";
    "me";
    "neigh";
    "min";
    "max";
  ]

(* Multi-character symbols, longest first so the scanner is greedy. *)
let symbols =
  [ "::"; ":="; "->"; ".."; "=="; "!="; "<="; ">="; "&&"; "||";
    "("; ")"; ":"; ";"; "."; ","; "+"; "-"; "*"; "/"; "%"; "<"; ">"; "!" ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize source =
  let length = String.length source in
  let line = ref 1 in
  let column = ref 1 in
  let index = ref 0 in
  let position () = { Ast.line = !line; column = !column } in
  let advance n =
    for k = !index to !index + n - 1 do
      if k < length && source.[k] = '\n' then begin
        incr line;
        column := 1
      end
      else incr column
    done;
    index := !index + n
  in
  let peek k = if !index + k < length then Some source.[!index + k] else None in
  let starts_with prefix =
    let pl = String.length prefix in
    !index + pl <= length && String.sub source !index pl = prefix
  in
  let out = ref [] in
  let emit token pos = out := { token; pos } :: !out in
  let rec skip_line () =
    match peek 0 with
    | Some '\n' | None -> ()
    | Some _ ->
      advance 1;
      skip_line ()
  in
  while !index < length do
    let c = source.[!index] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '#' || starts_with "//" then skip_line ()
    else if is_digit c then begin
      let pos = position () in
      let start = !index in
      while (match peek 0 with Some d when is_digit d -> true | _ -> false) do
        advance 1
      done;
      emit (INT (int_of_string (String.sub source start (!index - start)))) pos
    end
    else if is_ident_start c then begin
      let pos = position () in
      let start = !index in
      while (match peek 0 with Some d when is_ident_char d -> true | _ -> false) do
        advance 1
      done;
      let word = String.sub source start (!index - start) in
      if List.mem word keywords then emit (KW word) pos else emit (IDENT word) pos
    end
    else begin
      let pos = position () in
      match List.find_opt starts_with symbols with
      | Some sym ->
        advance (String.length sym);
        emit (SYM sym) pos
      | None -> raise (Error (Printf.sprintf "unexpected character %C" c, pos))
    end
  done;
  emit EOF (position ());
  List.rev !out
