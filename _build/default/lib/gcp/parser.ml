exception Error of string * Ast.position

type state = { mutable rest : Lexer.lexeme list }

let peek st = match st.rest with [] -> assert false | l :: _ -> l

let advance st = match st.rest with [] -> assert false | _ :: rest -> st.rest <- rest

let fail st message = raise (Error (message, (peek st).Lexer.pos))

let expect_sym st sym =
  match (peek st).Lexer.token with
  | Lexer.SYM s when s = sym -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" sym)

let expect_kw st kw =
  match (peek st).Lexer.token with
  | Lexer.KW k when k = kw -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" kw)

let expect_ident st what =
  match (peek st).Lexer.token with
  | Lexer.IDENT id ->
    advance st;
    id
  | _ -> fail st (Printf.sprintf "expected %s" what)

let accept_sym st sym =
  match (peek st).Lexer.token with
  | Lexer.SYM s when s = sym ->
    advance st;
    true
  | _ -> false

let accept_kw st kw =
  match (peek st).Lexer.token with
  | Lexer.KW k when k = kw ->
    advance st;
    true
  | _ -> false

let mk pos desc = { Ast.desc; pos }

(* --- expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept_sym st "||" then
    let right = parse_or st in
    mk left.Ast.pos (Ast.Binop (Ast.Or, left, right))
  else left

and parse_and st =
  let left = parse_cmp st in
  if accept_sym st "&&" then
    let right = parse_and st in
    mk left.Ast.pos (Ast.Binop (Ast.And, left, right))
  else left

and parse_cmp st =
  let left = parse_add st in
  let op =
    match (peek st).Lexer.token with
    | Lexer.SYM "==" -> Some Ast.Eq
    | Lexer.SYM "!=" -> Some Ast.Neq
    | Lexer.SYM "<" -> Some Ast.Lt
    | Lexer.SYM "<=" -> Some Ast.Le
    | Lexer.SYM ">" -> Some Ast.Gt
    | Lexer.SYM ">=" -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance st;
    let right = parse_add st in
    mk left.Ast.pos (Ast.Binop (op, left, right))

and parse_add st =
  let rec go left =
    if accept_sym st "+" then go (mk left.Ast.pos (Ast.Binop (Ast.Add, left, parse_mul st)))
    else if accept_sym st "-" then
      go (mk left.Ast.pos (Ast.Binop (Ast.Sub, left, parse_mul st)))
    else left
  in
  go (parse_mul st)

and parse_mul st =
  let rec go left =
    if accept_sym st "*" then go (mk left.Ast.pos (Ast.Binop (Ast.Mul, left, parse_unary st)))
    else if accept_sym st "/" then
      go (mk left.Ast.pos (Ast.Binop (Ast.Div, left, parse_unary st)))
    else if accept_sym st "%" then
      go (mk left.Ast.pos (Ast.Binop (Ast.Mod, left, parse_unary st)))
    else left
  in
  go (parse_unary st)

and parse_unary st =
  let pos = (peek st).Lexer.pos in
  if accept_sym st "!" then mk pos (Ast.Not (parse_unary st)) else parse_primary st

and parse_quantifier st pos build =
  let binder = expect_ident st "a neighbor binder" in
  expect_sym st "(";
  let body = parse_expr st in
  expect_sym st ")";
  mk pos (build binder body)

and parse_primary st =
  let { Lexer.token; pos } = peek st in
  match token with
  | Lexer.INT n ->
    advance st;
    mk pos (Ast.Int n)
  | Lexer.KW "true" ->
    advance st;
    mk pos (Ast.Bool true)
  | Lexer.KW "false" ->
    advance st;
    mk pos (Ast.Bool false)
  | Lexer.KW "degree" ->
    advance st;
    mk pos Ast.Degree
  | Lexer.SYM "(" ->
    advance st;
    let e = parse_expr st in
    expect_sym st ")";
    e
  | Lexer.KW "if" ->
    advance st;
    let cond = parse_expr st in
    expect_kw st "then";
    let then_ = parse_expr st in
    expect_kw st "else";
    let else_ = parse_expr st in
    mk pos (Ast.If (cond, then_, else_))
  | Lexer.KW "forall" ->
    advance st;
    parse_quantifier st pos (fun binder body -> Ast.Forall (binder, body))
  | Lexer.KW "exists" ->
    advance st;
    parse_quantifier st pos (fun binder body -> Ast.Exists (binder, body))
  | Lexer.KW "count" ->
    advance st;
    parse_quantifier st pos (fun binder body -> Ast.Count (binder, body))
  | Lexer.KW "min" ->
    advance st;
    parse_quantifier st pos (fun binder body -> Ast.Minval (binder, body))
  | Lexer.KW "max" ->
    advance st;
    parse_quantifier st pos (fun binder body -> Ast.Maxval (binder, body))
  | Lexer.KW "first" ->
    advance st;
    let binder = expect_ident st "an integer binder" in
    expect_kw st "in";
    let low = parse_add st in
    expect_sym st "..";
    let high = parse_add st in
    expect_kw st "with";
    let body = parse_expr st in
    mk pos (Ast.First (binder, low, high, body))
  | Lexer.KW "neigh" ->
    advance st;
    expect_sym st "(";
    let index = parse_expr st in
    expect_sym st ")";
    expect_sym st ".";
    let var = expect_ident st "a variable name" in
    mk pos (Ast.Indexed_var (index, var))
  | Lexer.IDENT id ->
    advance st;
    if accept_sym st "." then begin
      let var = expect_ident st "a variable name" in
      if accept_kw st "is" then begin
        expect_kw st "me";
        mk pos (Ast.Is_me (id, var))
      end
      else mk pos (Ast.Neighbor_var (id, var))
    end
    else mk pos (Ast.Var id)
  | _ -> fail st "expected an expression"

(* --- declarations --- *)

let parse_domain st =
  if accept_kw st "bool" then Ast.Bool_domain
  else begin
    let low = parse_add st in
    expect_sym st "..";
    let high = parse_add st in
    Ast.Range (low, high)
  end

let parse_var st =
  let pos = (peek st).Lexer.pos in
  expect_kw st "var";
  let name = expect_ident st "a variable name" in
  expect_sym st ":";
  let domain = parse_domain st in
  (name, domain, pos)

let parse_assign st =
  let target = expect_ident st "an assignment target" in
  expect_sym st ":=";
  let value = parse_expr st in
  (target, value)

let parse_action st =
  let pos = (peek st).Lexer.pos in
  expect_kw st "action";
  let label = expect_ident st "an action label" in
  expect_sym st "::";
  let guard = parse_expr st in
  expect_sym st "->";
  let rec assignments acc =
    let a = parse_assign st in
    if accept_sym st ";" then assignments (a :: acc) else List.rev (a :: acc)
  in
  { Ast.label; guard; assignments = assignments []; action_pos = pos }

let parse source =
  let st = { rest = Lexer.tokenize source } in
  expect_kw st "protocol";
  let name = expect_ident st "a protocol name" in
  let rec vars acc =
    match (peek st).Lexer.token with
    | Lexer.KW "var" -> vars (parse_var st :: acc)
    | _ -> List.rev acc
  in
  let vars = vars [] in
  if vars = [] then fail st "a protocol needs at least one 'var' declaration";
  let rec actions acc =
    match (peek st).Lexer.token with
    | Lexer.KW "action" -> actions (parse_action st :: acc)
    | _ -> List.rev acc
  in
  let actions = actions [] in
  if actions = [] then fail st "a protocol needs at least one 'action'";
  expect_kw st "legitimate";
  let legitimate =
    if accept_kw st "terminal" then Ast.Terminal else (expect_kw st "all"; Ast.All (parse_expr st))
  in
  (match (peek st).Lexer.token with
  | Lexer.EOF -> ()
  | _ -> fail st "trailing input after the 'legitimate' clause");
  { Ast.name; vars; actions; legitimate }
