type ty = Tint | Tbool

exception Error of string * Ast.position

let ty_name = function Tint -> "int" | Tbool -> "bool"

let var_type (program : Ast.program) name =
  match List.find_opt (fun (n, _, _) -> n = name) program.Ast.vars with
  | Some (_, Ast.Bool_domain, _) -> Tbool
  | Some (_, Ast.Range _, _) -> Tint
  | None -> raise Not_found

type env = {
  program : Ast.program;
  neighbor_binders : string list;
  int_binders : string list;
}

let fail pos fmt = Printf.ksprintf (fun m -> raise (Error (m, pos))) fmt

let lookup_var env pos name =
  match var_type env.program name with
  | ty -> ty
  | exception Not_found -> fail pos "unknown variable '%s'" name

let rec infer env (e : Ast.expr) =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Int _ -> Tint
  | Ast.Bool _ -> Tbool
  | Ast.Degree -> Tint
  | Ast.Var name ->
    if List.mem name env.int_binders then Tint
    else if List.mem name env.neighbor_binders then
      fail pos "'%s' is a neighbor binder; use '%s.<variable>'" name name
    else lookup_var env pos name
  | Ast.Neighbor_var (binder, var) ->
    if not (List.mem binder env.neighbor_binders) then
      fail pos "'%s' is not a neighbor binder in scope" binder;
    lookup_var env pos var
  | Ast.Indexed_var (index, var) ->
    expect env index Tint;
    lookup_var env pos var
  | Ast.Is_me (binder, var) ->
    if not (List.mem binder env.neighbor_binders) then
      fail pos "'%s' is not a neighbor binder in scope" binder;
    (match lookup_var env pos var with
    | Tint -> Tbool
    | Tbool -> fail pos "'%s' must be an integer (local-index) variable for 'is me'" var)
  | Ast.Binop (op, l, r) -> (
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      expect env l Tint;
      expect env r Tint;
      Tint
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      expect env l Tint;
      expect env r Tint;
      Tbool
    | Ast.Eq | Ast.Neq ->
      let tl = infer env l in
      expect env r tl;
      Tbool
    | Ast.And | Ast.Or ->
      expect env l Tbool;
      expect env r Tbool;
      Tbool)
  | Ast.Not body ->
    expect env body Tbool;
    Tbool
  | Ast.If (cond, then_, else_) ->
    expect env cond Tbool;
    let ty = infer env then_ in
    expect env else_ ty;
    ty
  | Ast.Forall (binder, body) | Ast.Exists (binder, body) ->
    expect { env with neighbor_binders = binder :: env.neighbor_binders } body Tbool;
    Tbool
  | Ast.Count (binder, body) ->
    expect { env with neighbor_binders = binder :: env.neighbor_binders } body Tbool;
    Tint
  | Ast.Minval (binder, body) | Ast.Maxval (binder, body) ->
    expect { env with neighbor_binders = binder :: env.neighbor_binders } body Tint;
    Tint
  | Ast.First (binder, low, high, body) ->
    expect env low Tint;
    expect env high Tint;
    expect { env with int_binders = binder :: env.int_binders } body Tbool;
    Tint

and expect env e ty =
  let actual = infer env e in
  if actual <> ty then
    fail e.Ast.pos "this expression has type %s but %s was expected" (ty_name actual)
      (ty_name ty)

(* Domain bounds may mention constants, arithmetic and [degree] only:
   they are evaluated once per process at instantiation. *)
let rec check_domain_bound (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int _ | Ast.Degree -> ()
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), l, r) ->
    check_domain_bound l;
    check_domain_bound r
  | _ -> fail e.Ast.pos "domain bounds may only use constants, arithmetic and 'degree'"

let check (program : Ast.program) =
  (* No duplicate variable declarations. *)
  List.iteri
    (fun i (name, domain, pos) ->
      List.iteri
        (fun j (name', _, _) ->
          if j < i && name = name' then fail pos "variable '%s' declared twice" name)
        program.Ast.vars;
      match domain with
      | Ast.Bool_domain -> ()
      | Ast.Range (low, high) ->
        check_domain_bound low;
        check_domain_bound high)
    program.Ast.vars;
  let env = { program; neighbor_binders = []; int_binders = [] } in
  (* No duplicate action labels; guards boolean; assignments typed and
     unique per action. *)
  List.iteri
    (fun i (action : Ast.action) ->
      List.iteri
        (fun j (other : Ast.action) ->
          if j < i && action.Ast.label = other.Ast.label then
            fail action.Ast.action_pos "action '%s' declared twice" action.Ast.label)
        program.Ast.actions;
      expect env action.Ast.guard Tbool;
      List.iteri
        (fun i (target, value) ->
          List.iteri
            (fun j (target', _) ->
              if j < i && target = target' then
                fail action.Ast.action_pos "action '%s' assigns '%s' twice" action.Ast.label
                  target)
            action.Ast.assignments;
          let ty =
            match var_type program target with
            | ty -> ty
            | exception Not_found ->
              fail value.Ast.pos "assignment to unknown variable '%s'" target
          in
          expect env value ty)
        action.Ast.assignments)
    program.Ast.actions;
  match program.Ast.legitimate with
  | Ast.Terminal -> ()
  | Ast.All predicate -> expect env predicate Tbool
