type position = { line : int; column : int }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr = { desc : desc; pos : position }

and desc =
  | Int of int
  | Bool of bool
  | Degree
  | Var of string
  | Neighbor_var of string * string
  | Indexed_var of expr * string
  | Is_me of string * string
  | Binop of binop * expr * expr
  | Not of expr
  | If of expr * expr * expr
  | Forall of string * expr
  | Exists of string * expr
  | Count of string * expr
  | Minval of string * expr  (** smallest value of an int expression over neighbors *)
  | Maxval of string * expr
  | First of string * expr * expr * expr

type domain = Bool_domain | Range of expr * expr

type action = {
  label : string;
  guard : expr;
  assignments : (string * expr) list;
  action_pos : position;
}

type legitimate = Terminal | All of expr

type program = {
  name : string;
  vars : (string * domain * position) list;
  actions : action list;
  legitimate : legitimate;
}
