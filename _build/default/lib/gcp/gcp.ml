module Graph = Stabgraph.Graph

type program = Ast.program

let parse source =
  try
    let program = Parser.parse source in
    Typecheck.check program;
    Ok program
  with
  | Lexer.Error (message, pos) | Parser.Error (message, pos) | Typecheck.Error (message, pos)
    ->
    Error (Printf.sprintf "%d:%d: %s" pos.Ast.line pos.Ast.column message)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> parse source
  | exception Sys_error message -> Error message

let name (program : program) = program.Ast.name

let variables (program : program) = List.map (fun (n, _, _) -> n) program.Ast.vars

let var_index (program : program) name =
  let rec go i = function
    | [] -> raise Not_found
    | (n, _, _) :: rest -> if n = name then i else go (i + 1) rest
  in
  go 0 program.Ast.vars

(* --- evaluation --- *)

type env = {
  program : program;
  graph : Graph.t;
  cfg : int array array;  (** full configuration: cfg.(pid).(var slot) *)
  pid : int;  (** the executing process *)
  neighbors : (string * int) list;  (** binder -> neighbor global id *)
  ints : (string * int) list;  (** binder -> value *)
}

let eval_fail pos fmt =
  Printf.ksprintf
    (fun m -> failwith (Printf.sprintf "gcp:%d:%d: %s" pos.Ast.line pos.Ast.column m))
    fmt

(* Booleans are 0/1; the typechecker guarantees consistent usage. *)
let rec eval env (e : Ast.expr) =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Int n -> n
  | Ast.Bool b -> Bool.to_int b
  | Ast.Degree -> Graph.degree env.graph env.pid
  | Ast.Var name -> (
    match List.assoc_opt name env.ints with
    | Some v -> v
    | None -> env.cfg.(env.pid).(var_index env.program name))
  | Ast.Neighbor_var (binder, var) ->
    let q = List.assoc binder env.neighbors in
    env.cfg.(q).(var_index env.program var)
  | Ast.Indexed_var (index, var) ->
    let k = eval env index in
    if k < 0 || k >= Graph.degree env.graph env.pid then
      eval_fail pos "neighbor index %d out of range (degree %d)" k
        (Graph.degree env.graph env.pid)
    else env.cfg.(Graph.neighbor env.graph env.pid k).(var_index env.program var)
  | Ast.Is_me (binder, var) ->
    let q = List.assoc binder env.neighbors in
    let k = env.cfg.(q).(var_index env.program var) in
    if k < 0 || k >= Graph.degree env.graph q then 0
    else Bool.to_int (Graph.neighbor env.graph q k = env.pid)
  | Ast.Binop (op, l, r) -> (
    let lv () = eval env l and rv () = eval env r in
    match op with
    | Ast.Add -> lv () + rv ()
    | Ast.Sub -> lv () - rv ()
    | Ast.Mul -> lv () * rv ()
    | Ast.Div ->
      let d = rv () in
      if d = 0 then eval_fail pos "division by zero" else lv () / d
    | Ast.Mod ->
      let d = rv () in
      if d = 0 then eval_fail pos "modulo by zero"
      else ((lv () mod d) + abs d) mod abs d
    | Ast.Eq -> Bool.to_int (lv () = rv ())
    | Ast.Neq -> Bool.to_int (lv () <> rv ())
    | Ast.Lt -> Bool.to_int (lv () < rv ())
    | Ast.Le -> Bool.to_int (lv () <= rv ())
    | Ast.Gt -> Bool.to_int (lv () > rv ())
    | Ast.Ge -> Bool.to_int (lv () >= rv ())
    | Ast.And -> if lv () = 0 then 0 else rv ()
    | Ast.Or -> if lv () = 1 then 1 else rv ())
  | Ast.Not body -> 1 - eval env body
  | Ast.If (cond, then_, else_) -> if eval env cond = 1 then eval env then_ else eval env else_
  | Ast.Forall (binder, body) ->
    Bool.to_int
      (Array.for_all
         (fun q -> eval { env with neighbors = (binder, q) :: env.neighbors } body = 1)
         (Graph.neighbors env.graph env.pid))
  | Ast.Exists (binder, body) ->
    Bool.to_int
      (Array.exists
         (fun q -> eval { env with neighbors = (binder, q) :: env.neighbors } body = 1)
         (Graph.neighbors env.graph env.pid))
  | Ast.Count (binder, body) ->
    Array.fold_left
      (fun acc q ->
        acc + eval { env with neighbors = (binder, q) :: env.neighbors } body)
      0
      (Graph.neighbors env.graph env.pid)
  | Ast.Minval (binder, body) | Ast.Maxval (binder, body) ->
    let neighbors = Graph.neighbors env.graph env.pid in
    if Array.length neighbors = 0 then
      eval_fail pos "min/max over the neighbors of a degree-0 process"
    else begin
      let combine =
        match e.Ast.desc with Ast.Minval _ -> min | _ -> max
      in
      let values =
        Array.map
          (fun q -> eval { env with neighbors = (binder, q) :: env.neighbors } body)
          neighbors
      in
      Array.fold_left combine values.(0) values
    end
  | Ast.First (binder, low, high, body) ->
    let lo = eval env low and hi = eval env high in
    let rec go v =
      if v > hi then eval_fail pos "'first %s in %d .. %d' found no match" binder lo hi
      else if eval { env with ints = (binder, v) :: env.ints } body = 1 then v
      else go (v + 1)
    in
    go lo

(* --- instantiation --- *)

let domain_values (program : program) graph pid (domain : Ast.domain) pos =
  match domain with
  | Ast.Bool_domain -> Ok [ 0; 1 ]
  | Ast.Range (low, high) ->
    let env = { program; graph; cfg = [||]; pid; neighbors = []; ints = [] } in
    let lo = eval env low and hi = eval env high in
    if lo > hi then
      Error
        (Printf.sprintf "%d:%d: empty domain %d .. %d at process %d" pos.Ast.line
           pos.Ast.column lo hi pid)
    else Ok (List.init (hi - lo + 1) (fun i -> lo + i))

let pp_state (program : program) fmt state =
  List.iteri
    (fun i (name, domain, _) ->
      if i > 0 then Format.pp_print_char fmt ',';
      match domain with
      | Ast.Bool_domain -> Format.fprintf fmt "%s=%b" name (state.(i) = 1)
      | Ast.Range _ -> Format.fprintf fmt "%s=%d" name state.(i))
    program.Ast.vars

let instantiate (program : program) graph =
  (* Precompute per-process domains, failing on empty ones. *)
  let n = Graph.size graph in
  let exception Bad of string in
  match
    Array.init n (fun pid ->
        List.map
          (fun (_, domain, pos) ->
            match domain_values program graph pid domain pos with
            | Ok values -> values
            | Error message -> raise (Bad message))
          program.Ast.vars)
  with
  | exception Bad message -> Error message
  | domains ->
    let env_of cfg pid = { program; graph; cfg; pid; neighbors = []; ints = [] } in
    let to_action (a : Ast.action) : int array Stabcore.Protocol.action =
      {
        Stabcore.Protocol.label = a.Ast.label;
        guard = (fun cfg pid -> eval (env_of cfg pid) a.Ast.guard = 1);
        result =
          (fun cfg pid ->
            let env = env_of cfg pid in
            let next = Array.copy cfg.(pid) in
            List.iter
              (fun (target, value) ->
                let slot = var_index program target in
                let v = eval env value in
                let allowed = List.nth domains.(pid) slot in
                if not (List.mem v allowed) then
                  eval_fail value.Ast.pos
                    "action '%s' assigns %d to '%s', outside its domain at process %d"
                    a.Ast.label v target pid;
                next.(slot) <- v)
              a.Ast.assignments;
            [ (next, 1.0) ]);
      }
    in
    let protocol : int array Stabcore.Protocol.t =
      {
        Stabcore.Protocol.name = program.Ast.name;
        graph;
        domain =
          (fun pid ->
            (* Cartesian product of the variable domains, first variable
               varying slowest so states read naturally. *)
            List.fold_left
              (fun acc values ->
                List.concat_map
                  (fun prefix -> List.map (fun v -> prefix @ [ v ]) values)
                  acc)
              [ [] ] domains.(pid)
            |> List.map Array.of_list);
        actions = List.map to_action program.Ast.actions;
        equal = (fun a b -> a = b);
        pp = pp_state program;
        randomized = false;
      }
    in
    let spec =
      match program.Ast.legitimate with
      | Ast.Terminal ->
        Stabcore.Spec.terminal_spec ~name:(program.Ast.name ^ "-terminal") protocol
      | Ast.All predicate ->
        Stabcore.Spec.make ~name:(program.Ast.name ^ "-all") (fun cfg ->
            let ok = ref true in
            Graph.iter_nodes
              (fun pid -> if eval (env_of cfg pid) predicate <> 1 then ok := false)
              graph;
            !ok)
    in
    Ok (protocol, spec)
