(** Loading and instantiating GCP programs.

    The GCP language lets users define guarded-command protocols in
    plain text and run them through the whole laboratory — simulation,
    exhaustive checking, Markov analysis, the Section 4 transformer —
    without writing OCaml. Example ([examples/gcp/mis.gcp]):

    {v
protocol mis
var inS : bool
action enter   :: !inS && forall q (!q.inS) -> inS := true
action retreat :: inS  && exists q (q.inS)  -> inS := false
legitimate terminal
    v}

    A program is instantiated on a topology; the resulting protocol's
    local state is the tuple of declared variables, represented as an
    [int array] (booleans as 0/1). Programs are deterministic; apply
    {!Stabcore.Transformer.randomize} for the probabilistic version. *)

type program
(** A parsed, type-checked program. *)

val parse : string -> (program, string) result
(** Parse and type-check source text. The error string carries
    line/column information. *)

val load : string -> (program, string) result
(** [load path] reads and parses a [.gcp] file. *)

val name : program -> string
val variables : program -> string list
(** Declared variable names, in declaration order. *)

val instantiate :
  program ->
  Stabgraph.Graph.t ->
  (int array Stabcore.Protocol.t * int array Stabcore.Spec.t, string) result
(** Build the protocol and its specification on a topology. Fails if a
    variable domain is empty on some process (e.g. [0 .. degree - 1] on
    a degree-0 node). Runtime evaluation errors (division by zero,
    neighbor index out of range, assignment outside the domain,
    [first] without a match) raise [Failure] with position information
    when the protocol is later exercised. *)

val pp_state : program -> Format.formatter -> int array -> unit
(** Render a local state as [x=3,b=true]. *)
