(** Tokenizer for the GCP language. Comments run from [#] or [//] to
    end of line. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** keywords: protocol, var, action, legitimate, ... *)
  | SYM of string  (** punctuation and operators: [::], [->], [:=], ... *)
  | EOF

type lexeme = { token : token; pos : Ast.position }

exception Error of string * Ast.position

val tokenize : string -> lexeme list
(** Raises [Error] on unrecognized input. *)

val keywords : string list
(** The reserved words, for reference. *)
