lib/gcp/gcp.mli: Format Stabcore Stabgraph
