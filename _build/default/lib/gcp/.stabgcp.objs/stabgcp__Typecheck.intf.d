lib/gcp/typecheck.mli: Ast
