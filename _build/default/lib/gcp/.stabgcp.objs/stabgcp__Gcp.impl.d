lib/gcp/gcp.ml: Array Ast Bool Format In_channel Lexer List Parser Printf Stabcore Stabgraph Typecheck
