lib/gcp/lexer.ml: Ast List Printf String
