lib/gcp/typecheck.ml: Ast List Printf
