lib/gcp/ast.ml:
