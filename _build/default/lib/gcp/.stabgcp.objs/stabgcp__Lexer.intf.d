lib/gcp/lexer.mli: Ast
