lib/gcp/ast.mli:
