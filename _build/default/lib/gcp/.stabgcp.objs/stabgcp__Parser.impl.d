lib/gcp/parser.ml: Ast Lexer List Printf
