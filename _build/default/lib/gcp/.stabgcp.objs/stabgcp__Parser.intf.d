lib/gcp/parser.mli: Ast
