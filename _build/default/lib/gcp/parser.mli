(** Recursive-descent parser for the GCP language.

    Surface grammar (comments with [#] or [//]):

    {v
program    := 'protocol' IDENT vardecl+ action+ legit
vardecl    := 'var' IDENT ':' ('bool' | expr '..' expr)
action     := 'action' IDENT '::' expr '->' assign (';' assign)*
assign     := IDENT ':=' expr
legit      := 'legitimate' ('terminal' | 'all' expr)

expr       := or-expr with the usual precedences:
              ! > * / % > + - > comparisons > && > ||
primary    := INT | 'true' | 'false' | 'degree' | '(' expr ')'
            | 'if' expr 'then' expr 'else' expr
            | ('forall'|'exists'|'count') IDENT '(' expr ')'
            | 'first' IDENT 'in' expr '..' expr 'with' expr
            | 'neigh' '(' expr ')' '.' IDENT
            | IDENT | IDENT '.' IDENT [ 'is' 'me' ]
    v} *)

exception Error of string * Ast.position

val parse : string -> Ast.program
(** Raises [Error] (or [Lexer.Error]) on malformed input. *)
