(** Abstract syntax of the GCP (guarded-command protocol) language.

    A [.gcp] file defines one protocol in the paper's model: per-process
    variables over finite domains, guarded actions whose guards read the
    process and its neighbors and whose statements assign the process's
    own variables, and a legitimacy clause. See [docs/gcp.md] for the
    surface syntax and [Gcp] for loading and instantiating programs. *)

type position = { line : int; column : int }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr = { desc : desc; pos : position }

and desc =
  | Int of int
  | Bool of bool
  | Degree  (** the executing process's degree *)
  | Var of string  (** own variable, or a bound integer variable *)
  | Neighbor_var of string * string
      (** [q.x]: variable [x] of the bound neighbor [q] *)
  | Indexed_var of expr * string
      (** [neigh(e).x]: variable [x] of the neighbor with local index [e] *)
  | Is_me of string * string
      (** [q.x is me]: neighbor [q]'s variable [x], read as a local index
          in [q]'s frame, designates the executing process *)
  | Binop of binop * expr * expr
  | Not of expr
  | If of expr * expr * expr
  | Forall of string * expr  (** over the executing process's neighbors *)
  | Exists of string * expr
  | Count of string * expr
  | Minval of string * expr
      (** [min q (e)]: smallest value of [e] over the neighbors;
          evaluation error on a degree-0 process *)
  | Maxval of string * expr
  | First of string * expr * expr * expr
      (** [first v in e1 .. e2 with b]: smallest integer in the range
          satisfying [b]; evaluation error if none *)

type domain =
  | Bool_domain
  | Range of expr * expr
      (** inclusive bounds; may mention [degree] and constants only *)

type action = {
  label : string;
  guard : expr;
  assignments : (string * expr) list;  (** simultaneous; own variables only *)
  action_pos : position;
}

type legitimate =
  | Terminal  (** the silent specification: terminal configurations *)
  | All of expr  (** every process satisfies this local predicate *)

type program = {
  name : string;
  vars : (string * domain * position) list;
  actions : action list;
  legitimate : legitimate;
}
