(** Static checks for GCP programs: every identifier resolves, every
    expression is well-typed (int vs bool), guards and legitimacy
    predicates are boolean, assignments target declared variables of
    the right type (each at most once per action), and domain bounds
    only mention constants and [degree]. *)

type ty = Tint | Tbool

exception Error of string * Ast.position

val check : Ast.program -> unit
(** Raises [Error] on the first problem found. *)

val var_type : Ast.program -> string -> ty
(** Type of a declared variable; raises [Not_found] otherwise. *)
