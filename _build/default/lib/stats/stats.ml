type summary = {
  count : int;
  mean : float;
  stddev : float;
  stderr : float;
  min : float;
  max : float;
  ci95_low : float;
  ci95_high : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let m = mean xs in
  let sd = sqrt (variance xs) in
  let se = if n < 2 then 0.0 else sd /. sqrt (float_of_int n) in
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  {
    count = n;
    mean = m;
    stddev = sd;
    stderr = se;
    min = mn;
    max = mx;
    ci95_low = m -. (1.959964 *. se);
    ci95_high = m +. (1.959964 *. se);
  }

let summarize_ints xs = summarize (Array.map float_of_int xs)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

type histogram = { bounds : float array; counts : int array }

let histogram ~bins xs =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  let hi = if hi = lo then lo +. 1.0 else hi in
  let width = (hi -. lo) /. float_of_int bins in
  let bounds = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width)) in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let idx = int_of_float ((x -. lo) /. width) in
      let idx = if idx >= bins then bins - 1 else if idx < 0 then 0 else idx in
      counts.(idx) <- counts.(idx) + 1)
    xs;
  { bounds; counts }

let pp_summary fmt s =
  Format.fprintf fmt "%.3f +/- %.3f [%.3f, %.3f] (n=%d)" s.mean s.stderr s.min s.max
    s.count
