(** Summary statistics for the Monte-Carlo stabilization-time
    experiments (E1-E4 in DESIGN.md). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  stderr : float;  (** standard error of the mean *)
  min : float;
  max : float;
  ci95_low : float;  (** normal-approximation 95% confidence bounds *)
  ci95_high : float;
}

val summarize : float array -> summary
(** Requires a non-empty array. For a single sample the spread fields
    are 0. *)

val summarize_ints : int array -> summary

val mean : float array -> float
val variance : float array -> float
(** Sample variance; 0 for fewer than two samples. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [0 <= q <= 1]; linear interpolation between
    order statistics. Does not modify the input. *)

val median : float array -> float

type histogram = { bounds : float array; counts : int array }
(** [counts.(i)] falls in [[bounds.(i), bounds.(i+1))]; the last bin is
    closed on the right. *)

val histogram : bins:int -> float array -> histogram
(** Equal-width bins over the data range. Requires [bins >= 1] and a
    non-empty array. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line [mean +/- stderr [min, max] (n)] rendering. *)
