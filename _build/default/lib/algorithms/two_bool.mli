(** Algorithm 3 of the paper: the two-process boolean rendezvous that
    {e requires} synchrony to converge.

    Two neighboring processes [p] and [q] each hold a boolean [B]:

    {v
A1 :: not B_i ∧ not B_j -> B_i <- true
A2 :: B_i ∧ not B_j     -> B_i <- false
    v}

    The specification is the terminal predicate [B_p ∧ B_q]. The
    protocol is deterministically weak-stabilizing under a distributed
    strongly fair scheduler, but the only converging step out of
    [(false, false)] is the synchronous one — so it diverges forever
    under any central scheduler. The paper uses it to show that the
    Section 4 transformer must keep synchronous steps possible
    (Theorems 8/9). *)

val make : unit -> bool Stabcore.Protocol.t
(** The protocol on the two-process chain. *)

val spec : bool Stabcore.Spec.t
(** Legitimate iff both booleans hold. *)
