(** Self-stabilizing maximal independent set (the classic
    enter/retreat rules).

    Each process holds one boolean ([In] / [Out]):

    {v
enter   :: p = Out ∧ ∀q ∈ Neig_p: q = Out -> p <- In
retreat :: p = In  ∧ ∃q ∈ Neig_p: q = In  -> p <- Out
    v}

    Terminal configurations are exactly the maximal independent sets.
    Like {!Coloring}, the protocol is deterministically
    self-stabilizing under the central daemon (a classic exercise) but
    only weak-stabilizing under distributed or synchronous daemons —
    two adjacent [Out] processes entering together collide and retreat
    together, forever. The paper's transformer repairs it
    (Theorems 8/9), making this the simplest non-trivial client of the
    whole pipeline after Algorithm 3. *)

val make : Stabgraph.Graph.t -> bool Stabcore.Protocol.t
(** [true] = in the set. *)

val independent : Stabgraph.Graph.t -> bool array -> bool
(** No two adjacent members. *)

val maximal_independent : Stabgraph.Graph.t -> bool array -> bool
(** Independent, and every non-member has a member neighbor. *)

val spec : Stabgraph.Graph.t -> bool Stabcore.Spec.t
(** Legitimate: {!maximal_independent} (the terminal configurations). *)
