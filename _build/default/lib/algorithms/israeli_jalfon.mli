(** Israeli-Jalfon random-walk token management (reference [17] of the
    paper) — the second probabilistic comparator.

    Tokens live on a bidirectional ring; at each step the daemon picks
    a token holder, which flips a fair coin and passes its token to the
    left or right neighbor; colliding tokens merge. Starting from any
    non-empty token set, the merging random walks leave a single token
    with probability 1, and the survivor keeps performing a random walk
    (probabilistic self-stabilizing mutual exclusion).

    Because passing a token writes the {e receiver's} state, the
    protocol does not fit the paper's own-variables-only shared-memory
    model used by {!Stabcore.Protocol}; following DESIGN.md's
    substitution rule we model it directly at the token level: a state
    is the set of token positions, encoded as a bitmask, and the
    analysis uses {!Stabcore.Markov.of_rows} and a dedicated sampler.
    The abstraction preserves exactly the behaviour the paper cites the
    protocol for (merging random walks, probability-1 convergence). *)

val chain : n:int -> central:bool -> Stabcore.Markov.t
(** The full chain over the [2^n] token bitmasks (requires
    [3 <= n <= 20]). The empty mask is absorbing but unreachable from
    any non-empty mask. With [central:true] the daemon activates one
    uniformly chosen token per step; with [central:false] it activates
    a uniformly chosen non-empty subset of tokens, all moving
    simultaneously (reading the pre-step positions, merges applied
    after all moves). *)

val legitimate : n:int -> bool array
(** Bitmap over masks: exactly one token. *)

val sample_convergence :
  runs:int ->
  max_steps:int ->
  Stabrng.Rng.t ->
  n:int ->
  init_tokens:int list ->
  Stabcore.Montecarlo.result
(** Monte-Carlo convergence times (steps to a single token) with a
    central random daemon, for ring sizes beyond exhaustive analysis.
    [init_tokens] are the starting token positions (non-empty). *)
