(** Dijkstra's K-state token ring (reference [10] of the paper) — the
    classic {e deterministic self-stabilizing} baseline.

    The ring is rooted: process 0 is distinguished (the "bottom"
    machine), which is exactly the hypothesis whose removal (anonymity)
    makes deterministic self-stabilization impossible and motivates the
    paper's weak-stabilizing Algorithm 1. Process [p] reads its
    predecessor [p - 1 mod n]:

    {v
root  :: x_0 = x_{n-1}  -> x_0 <- (x_0 + 1) mod K
other :: x_p <> x_{p-1} -> x_p <- x_{p-1}
    v}

    A process holding the privilege (token) is an enabled one. With
    [K >= n] the protocol self-stabilizes to a single circulating
    privilege under the central daemon, and the privilege visits every
    process forever. *)

val make : n:int -> ?k:int -> unit -> int Stabcore.Protocol.t
(** [make ~n ()] uses [k = n + 1] states per process. Dijkstra's
    theorem needs [k >= n]; smaller [k >= 2] is accepted so the
    experiments can exhibit the classic failure just below the
    threshold (see the k-sweep in the test-suite and EXPERIMENTS.md).
    Requires [n >= 3]. *)

val privileged : n:int -> int array -> int list
(** Enabled (privileged) processes of a configuration. *)

val spec : n:int -> int Stabcore.Spec.t
(** Legitimate: exactly one privilege. *)
