module Graph = Stabgraph.Graph

let neighbor_colors g cfg p =
  Array.to_list (Graph.neighbors g p) |> List.map (fun q -> cfg.(q))

let in_conflict g cfg p = List.mem cfg.(p) (neighbor_colors g cfg p)

let conflicts g cfg =
  List.filter (in_conflict g cfg) (List.init (Graph.size g) Fun.id)

let proper g cfg = conflicts g cfg = []

let smallest_free g cfg p =
  let taken = neighbor_colors g cfg p in
  let rec go c = if List.mem c taken then go (c + 1) else c in
  go 0

let make ?colors g =
  let colors = Option.value colors ~default:(Graph.max_degree g + 1) in
  if colors <= Graph.max_degree g then
    invalid_arg "Coloring.make: need colors > max degree";
  let recolor : int Stabcore.Protocol.action =
    {
      label = "A";
      guard = (fun cfg p -> in_conflict g cfg p);
      result = (fun cfg p -> [ (smallest_free g cfg p, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name =
      Printf.sprintf "coloring(n=%d,k=%d)" (Graph.size g) colors;
    graph = g;
    domain = (fun _ -> List.init colors Fun.id);
    actions = [ recolor ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

let spec g = Stabcore.Spec.make ~name:"proper-coloring" (proper g)
