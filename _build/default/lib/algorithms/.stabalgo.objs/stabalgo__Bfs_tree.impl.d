lib/algorithms/bfs_tree.ml: Array Format Fun List Printf Stabcore Stabgraph
