lib/algorithms/two_bool.ml: Array Bool Format Stabcore Stabgraph
