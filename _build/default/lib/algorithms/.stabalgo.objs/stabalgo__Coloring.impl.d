lib/algorithms/coloring.ml: Array Format Fun Int List Option Printf Stabcore Stabgraph
