lib/algorithms/bfs_tree.mli: Stabcore Stabgraph
