lib/algorithms/herman.mli: Stabcore
