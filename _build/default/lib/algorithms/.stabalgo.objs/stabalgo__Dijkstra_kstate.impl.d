lib/algorithms/dijkstra_kstate.ml: Array Format Fun Int List Option Printf Stabcore Stabgraph
