lib/algorithms/israeli_jalfon.ml: Array Fun List Stabcore Stabrng
