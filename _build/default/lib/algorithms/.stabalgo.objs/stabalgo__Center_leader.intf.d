lib/algorithms/center_leader.mli: Stabcore Stabgraph
