lib/algorithms/two_bool.mli: Stabcore
