lib/algorithms/token_ring.ml: Array Format Fun Int List Printf Stabcore Stabgraph
