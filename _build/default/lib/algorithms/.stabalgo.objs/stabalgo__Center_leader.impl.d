lib/algorithms/center_leader.ml: Array Centers Format Fun List Printf Stabcore Stabgraph
