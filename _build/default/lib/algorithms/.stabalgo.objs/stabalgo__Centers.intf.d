lib/algorithms/centers.mli: Stabcore Stabgraph
