lib/algorithms/dijkstra_three.ml: Array Format Fun Int List Printf Stabcore Stabgraph
