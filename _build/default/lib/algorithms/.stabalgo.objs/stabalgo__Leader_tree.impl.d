lib/algorithms/leader_tree.ml: Array Format List Printf Stabcore Stabgraph
