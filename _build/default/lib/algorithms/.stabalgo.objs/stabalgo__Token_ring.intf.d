lib/algorithms/token_ring.mli: Stabcore
