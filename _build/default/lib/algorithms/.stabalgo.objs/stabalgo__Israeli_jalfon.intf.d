lib/algorithms/israeli_jalfon.mli: Stabcore Stabrng
