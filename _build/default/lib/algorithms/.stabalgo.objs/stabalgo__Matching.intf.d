lib/algorithms/matching.mli: Stabcore Stabgraph
