lib/algorithms/matching.ml: Array Format Fun Hashtbl List Printf Stabcore Stabgraph
