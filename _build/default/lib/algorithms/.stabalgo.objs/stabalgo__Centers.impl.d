lib/algorithms/centers.ml: Array Format Fun Int List Printf Stabcore Stabgraph
