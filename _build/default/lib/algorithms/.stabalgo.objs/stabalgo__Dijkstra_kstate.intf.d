lib/algorithms/dijkstra_kstate.mli: Stabcore
