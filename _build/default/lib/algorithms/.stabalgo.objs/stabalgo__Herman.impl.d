lib/algorithms/herman.ml: Array Bool Format Fun List Printf Stabcore Stabgraph
