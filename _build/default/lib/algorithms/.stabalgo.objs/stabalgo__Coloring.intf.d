lib/algorithms/coloring.mli: Stabcore Stabgraph
