lib/algorithms/leader_tree.mli: Stabcore Stabgraph
