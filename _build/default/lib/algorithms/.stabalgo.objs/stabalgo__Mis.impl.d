lib/algorithms/mis.ml: Array Bool Format List Printf Stabcore Stabgraph
