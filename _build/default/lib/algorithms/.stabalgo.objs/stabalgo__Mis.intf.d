lib/algorithms/mis.mli: Stabcore Stabgraph
