lib/algorithms/dijkstra_three.mli: Stabcore
