let popcount mask =
  let rec go mask acc = if mask = 0 then acc else go (mask lsr 1) (acc + (mask land 1)) in
  go mask 0

let token_positions ~n mask =
  List.filter (fun p -> mask land (1 lsl p) <> 0) (List.init n Fun.id)

(* Move the token at [p] one step left or right; merging is just the
   bitwise-or of destination bits. *)
let move ~n mask p ~right =
  let dest = if right then (p + 1) mod n else (p - 1 + n) mod n in
  mask land lnot (1 lsl p) lor (1 lsl dest)

let nonempty_submasks bits =
  (* All non-empty sub-bitmasks of the token set [bits]. *)
  let rec go sub acc =
    let acc = sub :: acc in
    if sub = 0 then acc else go ((sub - 1) land bits) acc
  in
  match go bits [] with
  | 0 :: rest -> rest
  | rest -> List.filter (fun m -> m <> 0) rest

let central_row ~n mask =
  match token_positions ~n mask with
  | [] -> [ (mask, 1.0) ]
  | tokens ->
    let per_token = 1.0 /. float_of_int (List.length tokens) in
    List.concat_map
      (fun p ->
        [
          (move ~n mask p ~right:false, per_token *. 0.5);
          (move ~n mask p ~right:true, per_token *. 0.5);
        ])
      tokens

let distributed_row ~n mask =
  if mask = 0 then [ (mask, 1.0) ]
  else begin
    let subsets = nonempty_submasks mask in
    let per_subset = 1.0 /. float_of_int (List.length subsets) in
    List.concat_map
      (fun subset ->
        let movers = token_positions ~n subset in
        let stay = mask land lnot subset in
        let move_count = List.length movers in
        let per_outcome = per_subset /. float_of_int (1 lsl move_count) in
        (* Enumerate all left/right choices of the movers. *)
        let rec branches movers acc =
          match movers with
          | [] -> [ acc ]
          | p :: rest ->
            branches rest (acc lor (1 lsl ((p + 1) mod n)))
            @ branches rest (acc lor (1 lsl ((p - 1 + n) mod n)))
        in
        List.map (fun bits -> (stay lor bits, per_outcome)) (branches movers 0))
      subsets
  end

let chain ~n ~central =
  if n < 3 || n > 20 then invalid_arg "Israeli_jalfon.chain: need 3 <= n <= 20";
  let rows =
    Array.init (1 lsl n) (fun mask ->
        if central then central_row ~n mask else distributed_row ~n mask)
  in
  Stabcore.Markov.of_rows rows

let legitimate ~n = Array.init (1 lsl n) (fun mask -> popcount mask = 1)

let sample_convergence ~runs ~max_steps rng ~n ~init_tokens =
  if init_tokens = [] then invalid_arg "Israeli_jalfon.sample_convergence: no tokens";
  let init_mask = List.fold_left (fun acc p -> acc lor (1 lsl (p mod n))) 0 init_tokens in
  let times = ref [] in
  let timeouts = ref 0 in
  for _ = 1 to runs do
    let stream = Stabrng.Rng.split rng in
    let rec go mask steps =
      if popcount mask = 1 then times := steps :: !times
      else if steps >= max_steps then incr timeouts
      else begin
        let tokens = Array.of_list (token_positions ~n mask) in
        let p = Stabrng.Rng.choice stream tokens in
        let right = Stabrng.Rng.bool stream in
        go (move ~n mask p ~right) (steps + 1)
      end
    in
    go init_mask 0
  done;
  let times = Array.of_list (List.rev !times) in
  (* In the token-level abstraction each step activates one token, so
     steps and rounds coincide. *)
  Stabcore.Montecarlo.of_samples ~times ~rounds:(Array.copy times) ~timeouts:!timeouts
