let smallest_non_divisor n =
  if n < 1 then invalid_arg "Token_ring.smallest_non_divisor: n must be >= 1";
  let rec go d = if n mod d <> 0 then d else go (d + 1) in
  go 2

let predecessor ~n p = (p - 1 + n) mod n

let has_token ~n cfg p =
  let m = smallest_non_divisor n in
  cfg.(p) <> (cfg.(predecessor ~n p) + 1) mod m

let token_holders ~n cfg =
  List.filter (has_token ~n cfg) (List.init n Fun.id)

let make ~n =
  if n < 3 then invalid_arg "Token_ring.make: need n >= 3";
  let m = smallest_non_divisor n in
  let pass_token : int Stabcore.Protocol.action =
    {
      label = "A";
      guard = (fun cfg p -> has_token ~n cfg p);
      result = (fun cfg p -> [ ((cfg.(predecessor ~n p) + 1) mod m, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "token-ring(n=%d,m=%d)" n m;
    graph = Stabgraph.Graph.ring n;
    domain = (fun _ -> List.init m Fun.id);
    actions = [ pass_token ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

let spec ~n =
  let step_ok before after =
    match (token_holders ~n before, token_holders ~n after) with
    | [ h ], [ h' ] -> h' = (h + 1) mod n
    | _ -> false
  in
  Stabcore.Spec.make ~step_ok ~name:"single-circulating-token" (fun cfg ->
      match token_holders ~n cfg with [ _ ] -> true | _ -> false)

(* Configurations are determined by the increments c_p = (dt_p -
   dt_pred) mod m: p holds a token iff c_p <> 1, and the increments sum
   to 0 mod m around the ring. We pick increments matching the
   requested holders, then integrate. *)
let config_with_tokens_at ~n holders =
  if n < 3 then invalid_arg "Token_ring.config_with_tokens_at: need n >= 3";
  let m = smallest_non_divisor n in
  let k = List.length holders in
  if k = 0 then
    invalid_arg "Token_ring.config_with_tokens_at: zero tokens is impossible (Lemma 4)";
  List.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Token_ring.config_with_tokens_at: holder out of range")
    holders;
  let sorted = List.sort_uniq compare holders in
  if List.length sorted <> k then
    invalid_arg "Token_ring.config_with_tokens_at: duplicate holders";
  (* Required sum of token increments: total 0 mod m, non-holders give 1 each. *)
  let residue = ((-(n - k)) mod m + m) mod m in
  let increments = Array.make n 1 in
  (* All token increments 0, except possibly the last two fixed up so
     the sum hits [residue] while avoiding the forbidden value 1. *)
  let assign values =
    List.iter2 (fun p c -> increments.(p) <- c) sorted values
  in
  (if m = 2 then
     if residue = 0 then assign (List.map (fun _ -> 0) sorted)
     else
       invalid_arg
         "Token_ring.config_with_tokens_at: token count has the wrong parity for this ring"
   else begin
     (* m >= 3: set all but the last token to 0; the last takes the
        residue. If that lands on 1, shift 2 onto the second-to-last. *)
     let all_but_last = List.map (fun _ -> 0) (List.tl sorted) in
     if residue <> 1 then assign (all_but_last @ [ residue ])
     else if k >= 2 then begin
       let first_tokens = List.map (fun _ -> 0) (List.tl (List.tl sorted)) in
       let last = ((residue - 2) mod m + m) mod m in
       assign (first_tokens @ [ 2; last ])
     end
     else
       invalid_arg
         "Token_ring.config_with_tokens_at: a single token at this position is impossible"
   end);
  let cfg = Array.make n 0 in
  for p = 1 to n - 1 do
    cfg.(p) <- (cfg.(p - 1) + increments.(p)) mod m
  done;
  cfg

let legitimate_config ~n = config_with_tokens_at ~n [ 0 ]
