(** Dijkstra's three-state machines (the third solution of the 1974
    CACM paper) — mutual exclusion on a line with {e two} distinguished
    machines, three states per process.

    Machines 0 (bottom) and n-1 (top) are special; the top machine also
    reads the bottom machine's state (the line is physically a ring).
    With [S] a machine's state, [L]/[R] its left/right neighbor and
    [B] the bottom machine, all arithmetic mod 3:

    {v
bottom :: S+1 = R             -> S := S-1
normal :: S+1 = L  or S+1 = R -> S := that neighbor  (left preferred)
top    :: L = B and L+1 <> S  -> S := L+1
    v}

    A privilege is an enabled machine. The checker verifies closure of
    the single-privilege set and certain convergence under the central
    daemon for n = 3..7 (see the test-suite) — reproducing Dijkstra's
    claim with three states per process instead of the K-state
    solution's n+1. The merged normal rule fires the left privilege
    when a machine holds both, a determinization of Dijkstra's "a
    machine with a privilege moves"; the verdicts hold for it. *)

val make : n:int -> int Stabcore.Protocol.t
(** Requires [n >= 3]. The topology is the [n]-ring so the top machine
    can read the bottom one; normal machines ignore that edge. *)

val privileged : n:int -> int array -> int list
(** Enabled machines. *)

val spec : n:int -> int Stabcore.Spec.t
(** Legitimate: exactly one privilege. *)
