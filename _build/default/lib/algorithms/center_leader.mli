(** The paper's first weak-stabilizing leader election on anonymous
    trees (Section 3.2, "a solution using log N bits").

    The construction composes the {!Centers} algorithm with a boolean
    tie-break [B]: once the center computation settles, either a unique
    process satisfies the center predicate — it is the leader — or two
    neighboring processes do (Property 1). In the latter case a center
    whose [B] equals the other center's [B] may flip its own bit:

    {v
L1 :: l_p <> desired(p)                                    -> l_p <- desired(p)
L2 :: l_p = desired(p) ∧ Center(p)
      ∧ ∃q ∈ Neig_p: l_q = l_p ∧ B_q = B_p                 -> B_p <- not B_p
    v}

    From a configuration where both centers carry the same bit, it is
    always {e possible} to reach a terminal configuration in one step —
    activate exactly one of them — but a synchronous daemon flips both
    bits together forever: weak-stabilizing, not self-stabilizing. *)

type state = { level : int; flag : bool }

val make : Stabgraph.Graph.t -> state Stabcore.Protocol.t
(** Raises [Invalid_argument] on non-trees. *)

val is_unique_leader : Stabgraph.Graph.t -> state array -> int -> bool
(** The elected-leader predicate: [p] satisfies the center predicate
    and either no neighbor ties its level, or [p] wins the boolean
    tie-break against the tying neighbor. *)

val leaders : Stabgraph.Graph.t -> state array -> int list

val spec : Stabgraph.Graph.t -> state Stabcore.Spec.t
(** Legitimate: terminal with exactly one leader. *)
