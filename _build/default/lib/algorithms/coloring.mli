(** Greedy (Delta+1)-coloring — the canonical "conflict" protocol
    behind the paper's reference [14] (Gradinariu-Tixeuil conflict
    managers).

    Each process holds a color; a process in conflict with a neighbor
    recolors itself with the smallest color unused in its neighborhood:

    {v A :: ∃q ∈ Neig_p: c_q = c_p -> c_p <- min (colors \ { c_q }) v}

    A recoloring never creates a new conflict for the mover, so under a
    {e central} daemon the number of conflicting processes strictly
    decreases: the protocol is deterministically self-stabilizing.
    Under a {e distributed} (or synchronous) daemon two conflicting
    neighbors can recolor simultaneously to the same value and oscillate
    forever — the protocol degrades to weak-stabilizing, exactly the
    gap the paper's transformer closes (Theorems 8/9): the transformed
    version is probabilistically self-stabilizing under both. *)

val make : ?colors:int -> Stabgraph.Graph.t -> int Stabcore.Protocol.t
(** [make g] uses [colors = max_degree g + 1] (the minimum that makes
    the greedy rule total); pass more for slacker palettes. Raises
    [Invalid_argument] if [colors <= max_degree g]. *)

val proper : Stabgraph.Graph.t -> int array -> bool
(** No edge is monochromatic. *)

val conflicts : Stabgraph.Graph.t -> int array -> int list
(** Processes sharing a color with some neighbor, sorted. *)

val spec : Stabgraph.Graph.t -> int Stabcore.Spec.t
(** Legitimate: proper colorings (exactly the terminal
    configurations). *)
