module Graph = Stabgraph.Graph

let level_max g = ((Graph.size g + 1) / 2) + 1

(* Second largest element (with multiplicity) of the neighbor levels;
   -1 when there are fewer than two neighbors. *)
let max2 levels =
  match List.sort (fun a b -> compare b a) levels with
  | _ :: second :: _ -> second
  | [ _ ] | [] -> -1

let desired g cfg p =
  let neighbor_levels = Array.to_list (Array.map (fun q -> cfg.(q)) (Graph.neighbors g p)) in
  min (1 + max2 neighbor_levels) (level_max g)

let is_center g cfg p =
  Array.for_all (fun q -> cfg.(p) >= cfg.(q)) (Graph.neighbors g p)

let make g =
  if not (Graph.is_tree g) then invalid_arg "Centers.make: graph is not a tree";
  let update : int Stabcore.Protocol.action =
    {
      label = "A";
      guard = (fun cfg p -> cfg.(p) <> desired g cfg p);
      result = (fun cfg p -> [ (desired g cfg p, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "tree-centers(n=%d)" (Graph.size g);
    graph = g;
    domain = (fun _ -> List.init (level_max g + 1) Fun.id);
    actions = [ update ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

let spec g =
  let centers = Graph.centers g in
  Stabcore.Spec.make ~name:"stable-center-marking" (fun cfg ->
      let stable =
        Graph.fold_nodes (fun p acc -> acc && cfg.(p) = desired g cfg p) g true
      in
      stable
      && Graph.fold_nodes
           (fun p acc -> acc && is_center g cfg p = List.mem p centers)
           g true)
