(** Self-stabilizing tree center finding, after Bruell, Ghosh, Karaata
    and Pemmaraju (reference [4] of the paper).

    Each process keeps a level [l_p]. The stable value of [l_p] is the
    height of the subtree "hanging away" from the center through [p]:
    leaves settle at 0, internal nodes at one plus the {e second}
    largest neighbor level ([max2]), which filters out the one branch
    leading toward the far side of the tree. At the fixed point, a
    process is a center iff its level is maximal in its closed
    neighborhood — the unique center, or the two neighboring centers of
    the paper's Property 1.

    {v A :: l_p <> desired(p) -> l_p <- desired(p) v}

    where [desired(p) = min (1 + max2 {l_q : q ∈ Neig_p}, l_max)] and
    [max2] of a multiset with fewer than two elements is [-1]. The
    clamp [l_max] keeps the state space finite without moving any
    fixed point (stable levels are at most ceil(D/2) < l_max).

    The paper's first (log N bits) weak-stabilizing leader election
    builds on this algorithm; see {!Center_leader}. *)

val make : Stabgraph.Graph.t -> int Stabcore.Protocol.t
(** The protocol on a tree; level domain is [[0 .. l_max]] with
    [l_max = ceil(n/2) + 1]. Raises [Invalid_argument] on non-trees. *)

val desired : Stabgraph.Graph.t -> int array -> int -> int
(** The target level of [p] in the given configuration. *)

val is_center : Stabgraph.Graph.t -> int array -> int -> bool
(** The local center predicate [l_p >= l_q] for every neighbor [q];
    meaningful at the fixed point. *)

val spec : Stabgraph.Graph.t -> int Stabcore.Spec.t
(** Legitimate: terminal (every process at its desired level) and the
    local center predicate marks exactly the graph centers. *)
