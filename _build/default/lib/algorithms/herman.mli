(** Herman's probabilistic self-stabilizing token ring (reference [16]
    of the paper) — the canonical {e probabilistic} comparator.

    Synchronous protocol on an odd-size unidirectional ring of boolean
    values. Process [p] holds a token iff [x_p = x_pred]. Every step,
    all processes update simultaneously: a token holder draws a fresh
    random bit, a non-holder copies its predecessor. Token count parity
    is invariant and odd, tokens perform merging random walks, and the
    system converges with probability 1 to a single circulating token,
    in expected O(n^2) steps.

    In the paper's terms: the system is probabilistically
    self-stabilizing under the synchronous scheduler, the very setting
    in which deterministic protocols were shown equivalent to
    weak-stabilizing ones (Theorem 1) — randomness breaks the symmetry
    that dooms determinism (Theorem 3's argument). *)

val make : n:int -> bool Stabcore.Protocol.t
(** Requires odd [n >= 3]. Every process is always enabled; run it
    under the synchronous scheduler / [Markov.Sync] only. *)

val has_token : n:int -> bool array -> int -> bool
val token_holders : n:int -> bool array -> int list

val spec : n:int -> bool Stabcore.Spec.t
(** Legitimate: exactly one token. *)
