module Graph = Stabgraph.Graph

let member_neighbor g cfg p =
  Array.exists (fun q -> cfg.(q)) (Graph.neighbors g p)

let independent g cfg =
  List.for_all (fun (p, q) -> not (cfg.(p) && cfg.(q))) (Graph.edges g)

let maximal_independent g cfg =
  independent g cfg
  && Graph.fold_nodes (fun p acc -> acc && (cfg.(p) || member_neighbor g cfg p)) g true

let make g =
  let enter : bool Stabcore.Protocol.action =
    {
      label = "enter";
      guard = (fun cfg p -> (not cfg.(p)) && not (member_neighbor g cfg p));
      result = (fun _ _ -> [ (true, 1.0) ]);
    }
  in
  let retreat : bool Stabcore.Protocol.action =
    {
      label = "retreat";
      guard = (fun cfg p -> cfg.(p) && member_neighbor g cfg p);
      result = (fun _ _ -> [ (false, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "mis(n=%d)" (Graph.size g);
    graph = g;
    domain = (fun _ -> [ false; true ]);
    actions = [ enter; retreat ];
    equal = Bool.equal;
    pp = (fun fmt b -> Format.pp_print_string fmt (if b then "I" else "o"));
    randomized = false;
  }

let spec g = Stabcore.Spec.make ~name:"maximal-independent-set" (maximal_independent g)
