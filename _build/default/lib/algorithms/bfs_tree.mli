(** Self-stabilizing BFS spanning tree (rooted).

    The classic silent protocol (Dolev, Israeli, Moran lineage): a
    distinguished root holds distance 0; every other process keeps a
    distance and a parent pointer and repairs them toward

    {v dist_p = 1 + min { dist_q : q ∈ Neig_p },  par_p -> an argmin v}

    Distances contract monotonically to BFS level and the parent
    pointers then form a BFS spanning tree — self-stabilizing even
    under the unfair distributed daemon (verified exhaustively in the
    test-suite), in contrast to the anonymous protocols where the
    paper's impossibility results bite. Rootedness is the whole trick:
    exactly the symmetry-breaking assumption anonymity forbids. *)

type state = { dist : int; parent : int  (** local index; ignored at the root *) }

val root : int
(** Process 0 is the distinguished root. *)

val make : Stabgraph.Graph.t -> state Stabcore.Protocol.t
(** Requires a connected graph. Distances live in [[0 .. n]]. *)

val correct : Stabgraph.Graph.t -> state array -> bool
(** Every process's distance equals its BFS distance from the root and
    its parent is a neighbor one level closer (vacuous at the root). *)

val spec : Stabgraph.Graph.t -> state Stabcore.Spec.t
(** Legitimate: {!correct} — exactly the terminal configurations. *)
