let default_k n = n + 1

let has_privilege ~n cfg p =
  if p = 0 then cfg.(0) = cfg.(n - 1) else cfg.(p) <> cfg.(p - 1)

let privileged ~n cfg = List.filter (has_privilege ~n cfg) (List.init n Fun.id)

let make ~n ?k () =
  let k = Option.value k ~default:(default_k n) in
  if n < 3 then invalid_arg "Dijkstra_kstate.make: need n >= 3";
  if k < 2 then invalid_arg "Dijkstra_kstate.make: need k >= 2";
  let root : int Stabcore.Protocol.action =
    {
      label = "root";
      guard = (fun cfg p -> p = 0 && cfg.(0) = cfg.(n - 1));
      result = (fun cfg _ -> [ ((cfg.(0) + 1) mod k, 1.0) ]);
    }
  in
  let other : int Stabcore.Protocol.action =
    {
      label = "copy";
      guard = (fun cfg p -> p <> 0 && cfg.(p) <> cfg.(p - 1));
      result = (fun cfg p -> [ (cfg.(p - 1), 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "dijkstra-kstate(n=%d,k=%d)" n k;
    graph = Stabgraph.Graph.ring n;
    domain = (fun _ -> List.init k Fun.id);
    actions = [ root; other ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

let spec ~n =
  Stabcore.Spec.make ~name:"single-privilege" (fun cfg ->
      match privileged ~n cfg with [ _ ] -> true | _ -> false)
