let predecessor ~n p = (p - 1 + n) mod n

let has_token ~n cfg p = Bool.equal cfg.(p) cfg.(predecessor ~n p)

let token_holders ~n cfg =
  List.filter (has_token ~n cfg) (List.init n Fun.id)

let make ~n =
  if n < 3 || n mod 2 = 0 then invalid_arg "Herman.make: need odd n >= 3";
  let step : bool Stabcore.Protocol.action =
    {
      label = "H";
      guard = (fun _ _ -> true);
      result =
        (fun cfg p ->
          if has_token ~n cfg p then [ (false, 0.5); (true, 0.5) ]
          else [ (cfg.(predecessor ~n p), 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "herman(n=%d)" n;
    graph = Stabgraph.Graph.ring n;
    domain = (fun _ -> [ false; true ]);
    actions = [ step ];
    equal = Bool.equal;
    pp = (fun fmt b -> Format.pp_print_int fmt (Bool.to_int b));
    randomized = true;
  }

let spec ~n =
  Stabcore.Spec.make ~name:"single-herman-token" (fun cfg ->
      match token_holders ~n cfg with [ _ ] -> true | _ -> false)
