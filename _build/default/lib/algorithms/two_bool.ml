let other p = 1 - p

let make () =
  let a1 : bool Stabcore.Protocol.action =
    {
      label = "A1";
      guard = (fun cfg p -> (not cfg.(p)) && not cfg.(other p));
      result = (fun _ _ -> [ (true, 1.0) ]);
    }
  in
  let a2 : bool Stabcore.Protocol.action =
    {
      label = "A2";
      guard = (fun cfg p -> cfg.(p) && not cfg.(other p));
      result = (fun _ _ -> [ (false, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = "two-bool";
    graph = Stabgraph.Graph.chain 2;
    domain = (fun _ -> [ false; true ]);
    actions = [ a1; a2 ];
    equal = Bool.equal;
    pp = Format.pp_print_bool;
    randomized = false;
  }

let spec =
  Stabcore.Spec.make ~name:"both-true" (fun cfg -> cfg.(0) && cfg.(1))
