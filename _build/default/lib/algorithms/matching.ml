module Graph = Stabgraph.Graph

type pointer = Null | Pointer of int

let equal_pointer a b =
  match (a, b) with
  | Null, Null -> true
  | Pointer i, Pointer j -> i = j
  | Null, Pointer _ | Pointer _, Null -> false

let target g cfg p =
  match cfg.(p) with Null -> None | Pointer k -> Some (Graph.neighbor g p k)

let points_to g cfg q p = target g cfg q = Some p

(* Local indexes of p's neighbors that point at p, ascending. *)
let proposer_indexes g cfg p =
  List.filter
    (fun k -> points_to g cfg (Graph.neighbor g p k) p)
    (List.init (Graph.degree g p) Fun.id)

let null_neighbor_indexes g cfg p =
  List.filter
    (fun k -> cfg.(Graph.neighbor g p k) = Null)
    (List.init (Graph.degree g p) Fun.id)

let make g =
  let r1 : pointer Stabcore.Protocol.action =
    {
      label = "R1";
      guard = (fun cfg p -> cfg.(p) = Null && proposer_indexes g cfg p <> []);
      result =
        (fun cfg p ->
          match proposer_indexes g cfg p with
          | k :: _ -> [ (Pointer k, 1.0) ]
          | [] -> assert false);
    }
  in
  let r2 : pointer Stabcore.Protocol.action =
    {
      label = "R2";
      guard =
        (fun cfg p ->
          cfg.(p) = Null
          && proposer_indexes g cfg p = []
          && null_neighbor_indexes g cfg p <> []);
      result =
        (fun cfg p ->
          match null_neighbor_indexes g cfg p with
          | k :: _ -> [ (Pointer k, 1.0) ]
          | [] -> assert false);
    }
  in
  let r3 : pointer Stabcore.Protocol.action =
    {
      label = "R3";
      guard =
        (fun cfg p ->
          match target g cfg p with
          | None -> false
          | Some q -> (
            match target g cfg q with
            | None -> false
            | Some r -> r <> p));
      result = (fun _ _ -> [ (Null, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "matching(n=%d)" (Graph.size g);
    graph = g;
    domain = (fun p -> Null :: List.init (Graph.degree g p) (fun k -> Pointer k));
    actions = [ r1; r2; r3 ];
    equal = equal_pointer;
    pp =
      (fun fmt s ->
        match s with
        | Null -> Format.pp_print_string fmt "."
        | Pointer k -> Format.pp_print_int fmt k);
    randomized = false;
  }

let matched_pairs g cfg =
  Graph.fold_nodes
    (fun p acc ->
      match target g cfg p with
      | Some q when p < q && points_to g cfg q p -> (p, q) :: acc
      | Some _ | None -> acc)
    g []
  |> List.sort compare

let is_maximal_matching g cfg =
  let pairs = matched_pairs g cfg in
  let matched = Hashtbl.create 16 in
  List.iter
    (fun (p, q) ->
      Hashtbl.replace matched p ();
      Hashtbl.replace matched q ())
    pairs;
  (* Every non-null pointer belongs to a matched pair. *)
  let pointers_consistent =
    Graph.fold_nodes
      (fun p acc ->
        acc
        &&
        match target g cfg p with
        | None -> true
        | Some q -> points_to g cfg q p)
      g true
  in
  (* Maximality: no edge joins two unmatched processes. *)
  let maximal =
    List.for_all
      (fun (p, q) -> Hashtbl.mem matched p || Hashtbl.mem matched q)
      (Graph.edges g)
  in
  pointers_consistent && maximal

let spec g = Stabcore.Spec.make ~name:"maximal-matching" (is_maximal_matching g)
