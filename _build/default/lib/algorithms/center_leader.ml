module Graph = Stabgraph.Graph

type state = { level : int; flag : bool }

let levels_of cfg = Array.map (fun s -> s.level) cfg

let desired g cfg p = Centers.desired g (levels_of cfg) p

let locally_center g cfg p = Centers.is_center g (levels_of cfg) p

(* The neighbor tying p's level, if any — at the fixed point this is
   the second center of Property 1. *)
let tying_neighbor g cfg p =
  Array.to_list (Graph.neighbors g p)
  |> List.find_opt (fun q -> cfg.(q).level = cfg.(p).level)

let is_unique_leader g cfg p =
  locally_center g cfg p
  &&
  match tying_neighbor g cfg p with
  | None -> true
  | Some q -> cfg.(p).flag && not cfg.(q).flag

let leaders g cfg =
  List.filter (is_unique_leader g cfg) (List.init (Graph.size g) Fun.id)

let make g =
  if not (Graph.is_tree g) then invalid_arg "Center_leader.make: graph is not a tree";
  let l1 : state Stabcore.Protocol.action =
    {
      label = "L1";
      guard = (fun cfg p -> cfg.(p).level <> desired g cfg p);
      result = (fun cfg p -> [ ({ cfg.(p) with level = desired g cfg p }, 1.0) ]);
    }
  in
  let l2 : state Stabcore.Protocol.action =
    {
      label = "L2";
      guard =
        (fun cfg p ->
          cfg.(p).level = desired g cfg p
          && locally_center g cfg p
          &&
          match tying_neighbor g cfg p with
          | Some q -> cfg.(q).flag = cfg.(p).flag
          | None -> false);
      result = (fun cfg p -> [ ({ cfg.(p) with flag = not cfg.(p).flag }, 1.0) ]);
    }
  in
  let level_max = ((Graph.size g + 1) / 2) + 1 in
  {
    Stabcore.Protocol.name = Printf.sprintf "center-leader(n=%d)" (Graph.size g);
    graph = g;
    domain =
      (fun _ ->
        List.concat_map
          (fun level -> [ { level; flag = false }; { level; flag = true } ])
          (List.init (level_max + 1) Fun.id));
    actions = [ l1; l2 ];
    equal = (fun a b -> a.level = b.level && a.flag = b.flag);
    pp =
      (fun fmt s -> Format.fprintf fmt "%d%s" s.level (if s.flag then "t" else "f"));
    randomized = false;
  }

let spec g =
  Stabcore.Spec.make ~name:"unique-center-leader" (fun cfg ->
      let protocol_terminal =
        Graph.fold_nodes
          (fun p acc ->
            acc
            && cfg.(p).level = desired g cfg p
            && not
                 (locally_center g cfg p
                 &&
                 match tying_neighbor g cfg p with
                 | Some q -> cfg.(q).flag = cfg.(p).flag
                 | None -> false))
          g true
      in
      protocol_terminal && List.length (leaders g cfg) = 1)
