let m = 3

let bottom_enabled ~n:_ cfg = (cfg.(0) + 1) mod m = cfg.(1)

let normal_enabled ~n cfg p =
  p > 0 && p < n - 1
  && ((cfg.(p) + 1) mod m = cfg.(p - 1) || (cfg.(p) + 1) mod m = cfg.(p + 1))

let top_enabled ~n cfg =
  cfg.(n - 2) = cfg.(0) && (cfg.(n - 2) + 1) mod m <> cfg.(n - 1)

let privileged ~n cfg =
  List.filter
    (fun p ->
      if p = 0 then bottom_enabled ~n cfg
      else if p = n - 1 then top_enabled ~n cfg
      else normal_enabled ~n cfg p)
    (List.init n Fun.id)

let make ~n =
  if n < 3 then invalid_arg "Dijkstra_three.make: need n >= 3";
  let bottom : int Stabcore.Protocol.action =
    {
      label = "bottom";
      guard = (fun cfg p -> p = 0 && bottom_enabled ~n cfg);
      result = (fun cfg _ -> [ ((cfg.(0) + 2) mod m, 1.0) ]);
    }
  in
  let normal : int Stabcore.Protocol.action =
    {
      label = "normal";
      guard = (fun cfg p -> normal_enabled ~n cfg p);
      result =
        (fun cfg p ->
          (* Left privilege preferred when both are held. *)
          let next =
            if (cfg.(p) + 1) mod m = cfg.(p - 1) then cfg.(p - 1) else cfg.(p + 1)
          in
          [ (next, 1.0) ]);
    }
  in
  let top : int Stabcore.Protocol.action =
    {
      label = "top";
      guard = (fun cfg p -> p = n - 1 && top_enabled ~n cfg);
      result = (fun cfg _ -> [ ((cfg.(n - 2) + 1) mod m, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "dijkstra-3state(n=%d)" n;
    graph = Stabgraph.Graph.ring n;
    domain = (fun _ -> [ 0; 1; 2 ]);
    actions = [ bottom; normal; top ];
    equal = Int.equal;
    pp = Format.pp_print_int;
    randomized = false;
  }

let spec ~n =
  Stabcore.Spec.make ~name:"single-privilege-3state" (fun cfg ->
      match privileged ~n cfg with [ _ ] -> true | _ -> false)
