(** Algorithm 1 of the paper: token circulation on an anonymous
    unidirectional ring (Beauquier, Gradinariu, Johnen).

    Every process [p] holds one counter [dt_p] in [[0 .. m_N - 1]],
    where [m_N] is the smallest integer at least 2 that does not divide
    the ring size [N] — the minimal memory for probabilistic token
    circulation under a distributed scheduler. Process [p] {e holds a
    token} iff [dt_p <> (dt_pred + 1) mod m_N], where [pred] is its
    predecessor in the consistent direction. The unique action passes
    the token to the successor:

    {v A :: Token(p) -> dt_p <- (dt_pred(p) + 1) mod m_N v}

    The paper proves (Theorem 2) that this protocol is deterministically
    weak-stabilizing but {e not} self-stabilizing: deterministic
    self-stabilizing token circulation is impossible on anonymous rings
    (Herman, after Angluin). *)

val smallest_non_divisor : int -> int
(** [smallest_non_divisor n] is the paper's [m_N]: the least integer
    [>= 2] that does not divide [n]. Requires [n >= 1]. *)

val predecessor : n:int -> int -> int
(** [predecessor ~n p] is p's predecessor [(p - 1 + n) mod n] in the
    fixed orientation used by this instantiation. *)

val make : n:int -> int Stabcore.Protocol.t
(** The protocol on the ring of [n >= 3] processes; local state is the
    counter value. *)

val has_token : n:int -> int array -> int -> bool
(** The paper's [Token(p)] predicate. *)

val token_holders : n:int -> int array -> int list
(** Sorted token holders; never empty (Lemma 4). *)

val spec : n:int -> int Stabcore.Spec.t
(** Legitimate: exactly one token holder. Step behaviour: the token
    moves from its holder to the holder's successor. *)

val legitimate_config : n:int -> int array
(** A configuration with exactly one token (holder: process 0), used to
    reproduce Figure 1. *)

val config_with_tokens_at : n:int -> int list -> int array
(** [config_with_tokens_at ~n holders] builds a configuration whose
    token holders are exactly [holders] (sorted, non-empty). Because
    token count constraints follow from ring arithmetic, not every
    request is satisfiable: raises [Invalid_argument] if impossible
    (e.g. zero tokens, Lemma 4). Used to set up the Theorem 6
    counter-example (two tokens at distance [n/2]). *)
