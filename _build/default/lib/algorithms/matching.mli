(** Hsu-Huang self-stabilizing maximal matching.

    Each process keeps one pointer in [Neig_p ∪ {null}]; a matched pair
    points at each other. With [j -> i] meaning "j's pointer designates
    i", the three rules (determinized by lowest local index) are:

    {v
R1 (marry)   :: p -> null ∧ ∃q: q -> p                -> p -> q
R2 (propose) :: p -> null ∧ ∀q: q ↛ p ∧ ∃q: q -> null -> p -> q
R3 (abandon) :: p -> q ∧ q -> r, r ≠ p                -> p -> null
    v}

    Hsu and Huang proved central-daemon self-stabilization to a
    maximal matching. A pleasant surprise the checker establishes
    exhaustively (instances up to 6 processes, see the test-suite): in
    this determinized variant — lowest local index breaking ties, all
    activated processes reading the pre-step configuration — the
    protocol self-stabilizes under the {e distributed and synchronous}
    daemons too, because two neighbors proposing to each other
    simultaneously form a marriage rather than chattering. Contrast
    with {!Coloring}, where the same simultaneity is destructive. *)

type pointer = Null | Pointer of int  (** local neighbor index *)

val make : Stabgraph.Graph.t -> pointer Stabcore.Protocol.t

val matched_pairs : Stabgraph.Graph.t -> pointer array -> (int * int) list
(** Mutually-pointing pairs [(p, q)] with [p < q], sorted. *)

val is_maximal_matching : Stabgraph.Graph.t -> pointer array -> bool
(** The mutually-pointing pairs form a matching that no edge between
    two unmatched processes could extend, and every pointer is either
    [Null] or part of a matched pair. *)

val spec : Stabgraph.Graph.t -> pointer Stabcore.Spec.t
(** Legitimate: {!is_maximal_matching} (the terminal configurations). *)
