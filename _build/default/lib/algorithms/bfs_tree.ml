module Graph = Stabgraph.Graph

type state = { dist : int; parent : int }

let root = 0

let dist_cap g = Graph.size g

(* Desired distance and parent (lowest local index attaining the
   minimum neighbor distance). *)
let desired g cfg p =
  if p = root then { dist = 0; parent = 0 }
  else begin
    let best = ref max_int in
    let best_k = ref 0 in
    Array.iteri
      (fun k q ->
        if cfg.(q).dist < !best then begin
          best := cfg.(q).dist;
          best_k := k
        end)
      (Graph.neighbors g p);
    { dist = min (1 + !best) (dist_cap g); parent = !best_k }
  end

let make g =
  if not (Graph.is_connected g) then invalid_arg "Bfs_tree.make: graph is not connected";
  let repair : state Stabcore.Protocol.action =
    {
      label = "repair";
      guard =
        (fun cfg p ->
          let want = desired g cfg p in
          if p = root then cfg.(p).dist <> 0
          else cfg.(p).dist <> want.dist || cfg.(p).parent <> want.parent);
      result = (fun cfg p -> [ (desired g cfg p, 1.0) ]);
    }
  in
  {
    Stabcore.Protocol.name = Printf.sprintf "bfs-tree(n=%d)" (Graph.size g);
    graph = g;
    domain =
      (fun p ->
        if p = root then
          (* The root never uses its parent field; fixing it to 0 keeps
             the state space minimal. *)
          List.init (dist_cap g + 1) (fun d -> { dist = d; parent = 0 })
        else
          List.concat_map
            (fun d -> List.init (Graph.degree g p) (fun k -> { dist = d; parent = k }))
            (List.init (dist_cap g + 1) Fun.id));
    actions = [ repair ];
    equal = (fun a b -> a.dist = b.dist && a.parent = b.parent);
    pp = (fun fmt s -> Format.fprintf fmt "%d^%d" s.dist s.parent);
    randomized = false;
  }

let correct g cfg =
  Graph.fold_nodes
    (fun p acc ->
      acc
      &&
      if p = root then cfg.(p).dist = 0
      else begin
        let level = Graph.dist g root p in
        cfg.(p).dist = level
        && cfg.(Graph.neighbor g p cfg.(p).parent).dist = level - 1
      end)
    g true

let spec g = Stabcore.Spec.make ~name:"bfs-spanning-tree" (correct g)
