(** Collateral (layered) composition of protocols.

    The standard way to build stabilizing systems hierarchically: a
    {e base} protocol stabilizes some structure (e.g. tree centers),
    and an {e overlay} computes on top of it (e.g. a leader tie-break).
    The composition gives the base priority at each process — an
    overlay action can only fire where no base action is enabled — so
    once the base has stabilized the overlay runs undisturbed, and the
    overlay's transient garbage cannot corrupt the base (overlay
    actions write the overlay component only; this module enforces it).

    The paper's Section 3.2 log N leader election is exactly such a
    composition: {!Stabalgo.Centers} plus a boolean coin layer. The
    test-suite rebuilds it with {!collateral} and checks it is
    step-for-step the hand-written {!Stabalgo.Center_leader}. *)

type ('a, 'b) layered = { base : 'a; overlay : 'b }

val base_config : ('a, 'b) layered array -> 'a array
val overlay_config : ('a, 'b) layered array -> 'b array

val collateral :
  name:string ->
  base:'a Protocol.t ->
  overlay_domain:(int -> 'b list) ->
  overlay_actions:('a, 'b) layered Protocol.action list ->
  overlay_equal:('b -> 'b -> bool) ->
  overlay_pp:(Format.formatter -> 'b -> unit) ->
  ?overlay_randomized:bool ->
  unit ->
  ('a, 'b) layered Protocol.t
(** [collateral ~name ~base ~overlay_domain ~overlay_actions ...]:

    - base actions are lifted to the layered state (guards read the
      base projection; statements update the base component and keep
      the overlay component);
    - each overlay action's guard is conjoined with "no base action
      enabled at this process" (priority), and its statement's base
      component is overridden with the pre-step value (write
      protection);
    - the result is randomized iff the base is or
      [overlay_randomized = true] (set it when overlay statements
      assign P-variables). *)

val lift_base_spec : 'a Spec.t -> ('a, 'b) layered Spec.t
(** Judge only the base component (steps included, up to the overlay's
    stuttering on the base). *)
