type result = {
  times : int array;
  rounds : int array;
  timeouts : int;
  summary : Stabstats.Stats.summary option;
  rounds_summary : Stabstats.Stats.summary option;
}

let of_samples ~times ~rounds ~timeouts =
  let summarize arr =
    if Array.length arr = 0 then None else Some (Stabstats.Stats.summarize_ints arr)
  in
  {
    times;
    rounds;
    timeouts;
    summary = summarize times;
    rounds_summary = summarize rounds;
  }

let collect ~runs ~sample =
  let times = ref [] in
  let rounds = ref [] in
  let timeouts = ref 0 in
  for _ = 1 to runs do
    match sample () with
    | Some (steps, rnds) ->
      times := steps :: !times;
      rounds := rnds :: !rounds
    | None -> incr timeouts
  done;
  of_samples
    ~times:(Array.of_list (List.rev !times))
    ~rounds:(Array.of_list (List.rev !rounds))
    ~timeouts:!timeouts

let estimate ~runs ~max_steps rng protocol scheduler spec =
  collect ~runs ~sample:(fun () ->
      let stream = Stabrng.Rng.split rng in
      let init = Protocol.random_config stream protocol in
      Engine.convergence_cost ~max_steps stream protocol scheduler spec ~init)

let estimate_from ~runs ~max_steps rng protocol scheduler spec ~init =
  collect ~runs ~sample:(fun () ->
      let stream = Stabrng.Rng.split rng in
      Engine.convergence_cost ~max_steps stream protocol scheduler spec ~init)

let merge results =
  let times = Array.concat (List.map (fun r -> r.times) results) in
  let rounds = Array.concat (List.map (fun r -> r.rounds) results) in
  let timeouts = List.fold_left (fun acc r -> acc + r.timeouts) 0 results in
  of_samples ~times ~rounds ~timeouts

let estimate_parallel ?domains ~runs ~max_steps rng protocol scheduler spec =
  let domains =
    match domains with Some d -> max 1 d | None -> Domain.recommended_domain_count ()
  in
  let shard_sizes =
    List.init domains (fun i -> (runs / domains) + if i < runs mod domains then 1 else 0)
  in
  (* Split the streams BEFORE spawning so the derivation order is
     deterministic regardless of scheduling. *)
  let shards =
    List.filter_map
      (fun size -> if size = 0 then None else Some (size, Stabrng.Rng.split rng))
      shard_sizes
  in
  let workers =
    List.map
      (fun (size, stream) ->
        Domain.spawn (fun () ->
            estimate ~runs:size ~max_steps stream protocol scheduler spec))
      shards
  in
  merge (List.map Domain.join workers)

let pp_result fmt r =
  match (r.summary, r.rounds_summary) with
  | None, _ | _, None ->
    Format.fprintf fmt "no converged runs (%d timeouts)" r.timeouts
  | Some s, Some rs ->
    Format.fprintf fmt "steps: %a; rounds: %a; timeouts: %d" Stabstats.Stats.pp_summary s
      Stabstats.Stats.pp_summary rs r.timeouts
