type sched_class = Central | Distributed | Synchronous

let pp_sched_class fmt = function
  | Central -> Format.pp_print_string fmt "central"
  | Distributed -> Format.pp_print_string fmt "distributed"
  | Synchronous -> Format.pp_print_string fmt "synchronous"

type 'a t = { protocol : 'a Protocol.t; encoding : 'a Encoding.t; uid : int }

let default_max_configs = 2_000_000

(* Every space gets a process-unique id so expansion caches (see
   Checker) can key on identity without retaining the space itself. *)
let next_uid = Atomic.make 0

let build ?(max_configs = default_max_configs) protocol =
  let encoding = Encoding.of_protocol protocol in
  if Encoding.count encoding > max_configs then
    invalid_arg
      (Printf.sprintf "Statespace.build: %d configurations exceed the %d limit"
         (Encoding.count encoding) max_configs);
  { protocol; encoding; uid = Atomic.fetch_and_add next_uid 1 }

let protocol t = t.protocol
let encoding t = t.encoding
let uid t = t.uid
let count t = Encoding.count t.encoding
let config t c = Encoding.decode t.encoding c
let code t cfg = Encoding.encode t.encoding cfg

let enabled t c = Protocol.enabled_processes t.protocol (config t c)

let legitimate_set t spec =
  let out = Array.make (count t) false in
  Encoding.iter t.encoding (fun c cfg -> out.(c) <- spec.Spec.legitimate cfg);
  out

(* Non-empty subsets of [items], streamed straight from the bitmask
   loop in ascending mask order (so subset [i] alone comes before
   subsets containing later items). Item count is bounded by the
   process count, itself small in exhaustive analyses. *)
let iter_nonempty_subsets items f =
  let arr = Array.of_list items in
  let k = Array.length arr in
  if k > 20 then invalid_arg "Statespace: too many enabled processes to enumerate subsets";
  for mask = 1 to (1 lsl k) - 1 do
    let subset = ref [] in
    for i = k - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
    done;
    f !subset
  done

let subset_count k = (1 lsl k) - 1

(* Streamed transition enumeration: the distributed class visits the
   2^k - 1 activation subsets without ever materializing the subset
   list, which is what graph expansion consumes. Group order is
   identical to {!transitions}. *)
let fold_transitions t cls c ~init ~f =
  let cfg = config t c in
  let step acc active =
    let outcomes = Protocol.step_outcomes t.protocol cfg active in
    f acc active
      (List.map (fun (next, w) -> (Encoding.encode t.encoding next, w)) outcomes)
  in
  match Protocol.enabled_processes t.protocol cfg with
  | [] -> init
  | en -> (
    match cls with
    | Central -> List.fold_left (fun acc p -> step acc [ p ]) init en
    | Synchronous -> step init en
    | Distributed ->
      let acc = ref init in
      iter_nonempty_subsets en (fun subset -> acc := step !acc subset);
      !acc)

let transitions t cls c =
  List.rev
    (fold_transitions t cls c ~init:[] ~f:(fun acc active outcomes ->
         (active, outcomes) :: acc))

let successors t cls c =
  let seen = Hashtbl.create 16 in
  fold_transitions t cls c ~init:() ~f:(fun () _ outcomes ->
      List.iter (fun (c', _) -> Hashtbl.replace seen c' ()) outcomes);
  Hashtbl.fold (fun c' () acc -> c' :: acc) seen [] |> List.sort compare
