type sched_class = Central | Distributed | Synchronous

let pp_sched_class fmt = function
  | Central -> Format.pp_print_string fmt "central"
  | Distributed -> Format.pp_print_string fmt "distributed"
  | Synchronous -> Format.pp_print_string fmt "synchronous"

type 'a t = { protocol : 'a Protocol.t; encoding : 'a Encoding.t }

let default_max_configs = 2_000_000

let build ?(max_configs = default_max_configs) protocol =
  let encoding = Encoding.of_protocol protocol in
  if Encoding.count encoding > max_configs then
    invalid_arg
      (Printf.sprintf "Statespace.build: %d configurations exceed the %d limit"
         (Encoding.count encoding) max_configs);
  { protocol; encoding }

let protocol t = t.protocol
let encoding t = t.encoding
let count t = Encoding.count t.encoding
let config t c = Encoding.decode t.encoding c
let code t cfg = Encoding.encode t.encoding cfg

let enabled t c = Protocol.enabled_processes t.protocol (config t c)

let legitimate_set t spec =
  let out = Array.make (count t) false in
  Encoding.iter t.encoding (fun c cfg -> out.(c) <- spec.Spec.legitimate cfg);
  out

(* Non-empty subsets of [items] enumerated via bitmasks. Item count is
   bounded by the process count, itself small in exhaustive analyses. *)
let nonempty_subsets items =
  let arr = Array.of_list items in
  let k = Array.length arr in
  if k > 20 then invalid_arg "Statespace: too many enabled processes to enumerate subsets";
  let out = ref [] in
  for mask = (1 lsl k) - 1 downto 1 do
    let subset = ref [] in
    for i = k - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
    done;
    out := !subset :: !out
  done;
  !out

let subset_count k = (1 lsl k) - 1

let active_sets t cls c =
  match enabled t c with
  | [] -> []
  | enabled -> (
    match cls with
    | Central -> List.map (fun p -> [ p ]) enabled
    | Synchronous -> [ enabled ]
    | Distributed -> nonempty_subsets enabled)

let transitions t cls c =
  let cfg = config t c in
  List.map
    (fun active ->
      let outcomes = Protocol.step_outcomes t.protocol cfg active in
      (active, List.map (fun (next, w) -> (Encoding.encode t.encoding next, w)) outcomes))
    (active_sets t cls c)

let successors t cls c =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (_, outcomes) ->
      List.iter (fun (c', _) -> Hashtbl.replace seen c' ()) outcomes)
    (transitions t cls c);
  Hashtbl.fold (fun c' () acc -> c' :: acc) seen [] |> List.sort compare
