let pp_fired fmt fired =
  Format.fprintf fmt "@[<h>{";
  List.iteri
    (fun i (p, label) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%d:%s" p label)
    fired;
  Format.fprintf fmt "}@]"

let pp_event protocol fmt e =
  Format.fprintf fmt "@[<h>%a --%a--> %a@]"
    (Protocol.pp_config protocol) e.Engine.before pp_fired e.Engine.fired
    (Protocol.pp_config protocol) e.Engine.after

let pp protocol fmt trace =
  Format.fprintf fmt "@[<v>%a" (Protocol.pp_config protocol) trace.Engine.init;
  List.iter
    (fun e ->
      Format.fprintf fmt "@,  --%a--> %a" pp_fired e.Engine.fired
        (Protocol.pp_config protocol) e.Engine.after)
    trace.Engine.events;
  Format.fprintf fmt "@]"

let pp_compact protocol fmt trace =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i cfg ->
      if i > 0 then Format.fprintf fmt "@,";
      Protocol.pp_config protocol fmt cfg)
    (Engine.configs trace);
  Format.fprintf fmt "@]"

let to_string protocol trace = Format.asprintf "%a" (pp protocol) trace
