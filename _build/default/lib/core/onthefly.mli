(** On-the-fly reachability analysis for large state spaces.

    The explicit checker ({!Checker}) enumerates the whole
    configuration space, which caps it at a few million configurations.
    When the question is about specific initial configurations — "can
    the system recover from THIS corrupted state?", the k-stabilization
    style of question — only the forward-reachable sub-system matters,
    and it is often orders of magnitude smaller. This module explores
    it with a hash table, never materializing the full space.

    Soundness: when exploration completes within the state budget, the
    reachable sub-system is forward-closed, so possible- and
    certain-convergence verdicts relative to the given initial
    configurations are exact. When the budget is hit the answer is
    [Unknown]. *)

type stats = {
  explored : int;  (** configurations reached *)
  edges : int;  (** transitions expanded *)
  complete : bool;  (** false iff the state budget stopped exploration *)
}

type verdict =
  | Converges  (** the property holds on the reachable sub-system *)
  | Counterexample of int  (** a configuration code witnessing failure *)
  | Unknown  (** exploration hit the budget *)

val explore_size :
  ?max_states:int ->
  'a Statespace.t ->
  Statespace.sched_class ->
  inits:'a array list ->
  stats
(** Just measure the reachable sub-system. [max_states] defaults to
    [1_000_000]. *)

val possible_convergence_from :
  ?max_states:int ->
  'a Statespace.t ->
  Statespace.sched_class ->
  'a Spec.t ->
  inits:'a array list ->
  verdict * stats
(** Weak-stabilization relative to [inits]: from every reachable
    configuration some execution reaches the legitimate set. *)

val certain_convergence_from :
  ?max_states:int ->
  'a Statespace.t ->
  Statespace.sched_class ->
  'a Spec.t ->
  inits:'a array list ->
  verdict * stats
(** Self-stabilization-style convergence relative to [inits]: no
    reachable cycle outside [L] and no reachable illegitimate terminal
    configuration. *)
