(** The Section 4 weak-to-probabilistic transformer.

    The paper's scheme adds one boolean P-variable [B_i] per process and
    rewrites every action [A :: G -> S] into

    {v Trans(A) :: G -> B_i <- Rand(true, false); if B_i then S v}

    i.e. an activated process first tosses a fair coin, stores the
    result in [B_i], and performs the original statement only on
    [true]. Theorems 8 and 9: if the input system is deterministic,
    weak-stabilizing for [SP] under a distributed scheduler and has
    finitely many configurations, the transformed system is
    probabilistically self-stabilizing for [SP] under both the
    synchronous and the randomized distributed schedulers. *)

type 'a coin_state = { core : 'a; coin : bool }
(** The transformed local state: the original state plus [B_i]. *)

val randomize : ?coin_bias:float -> 'a Protocol.t -> 'a coin_state Protocol.t
(** [randomize p] is the paper's [Trans]. Guards read only [core]
    fields, exactly as in the paper (the original guard cannot mention
    the fresh variable [B]). [coin_bias] (default 0.5) is the
    probability that the toss succeeds; the paper uses a fair coin, and
    any bias in (0, 1) preserves Theorems 8/9. The transformed protocol
    is randomized, its name is suffixed with ["+trans"], and its domain
    is the original one crossed with [{false, true}]. *)

val lift_spec : 'a Spec.t -> 'a coin_state Spec.t
(** Legitimacy of the transformed system is the paper's [L_Prob]: the
    projection on the original variables lies in [L_Det]; the coin
    values are irrelevant. The per-step behaviour is lifted {e up to
    stuttering}: a transformed step whose coin tosses all fail leaves
    the projection unchanged and is accepted, matching the paper's
    Lemma 1 (either no assignment is performed on the common variables,
    or the step projects to an original step). *)

val lift_config : 'a array -> coins:bool array -> 'a coin_state array
val project_config : 'a coin_state array -> 'a array
