type 'a coin_state = { core : 'a; coin : bool }

let project_config cfg = Array.map (fun s -> s.core) cfg

let lift_config cores ~coins =
  if Array.length cores <> Array.length coins then
    invalid_arg "Transformer.lift_config: length mismatch";
  Array.mapi (fun i core -> { core; coin = coins.(i) }) cores

let randomize ?(coin_bias = 0.5) (p : 'a Protocol.t) =
  if coin_bias <= 0.0 || coin_bias >= 1.0 then
    invalid_arg "Transformer.randomize: coin_bias outside (0, 1)";
  let transform_action (a : 'a Protocol.action) =
    {
      Protocol.label = "Trans(" ^ a.Protocol.label ^ ")";
      guard = (fun cfg i -> a.Protocol.guard (project_config cfg) i);
      result =
        (fun cfg i ->
          (* Coin lost: keep the core state, record the toss. Coin won:
             run the original statement, record the toss. *)
          let core_dist = a.Protocol.result (project_config cfg) i in
          let win =
            List.map
              (fun (s, w) -> ({ core = s; coin = true }, w *. coin_bias))
              core_dist
          in
          let lose = ({ core = cfg.(i).core; coin = false }, 1.0 -. coin_bias) in
          (* Merge duplicate outcomes (possible when the statement is a
             no-op on some branch). *)
          let equal a b = p.Protocol.equal a.core b.core && a.coin = b.coin in
          let rec add acc (s, w) =
            match acc with
            | [] -> [ (s, w) ]
            | (s', w') :: rest ->
              if equal s s' then (s', w' +. w) :: rest else (s', w') :: add rest (s, w)
          in
          List.fold_left add [] (lose :: win));
    }
  in
  {
    Protocol.name = p.Protocol.name ^ "+trans";
    graph = p.Protocol.graph;
    domain =
      (fun i ->
        List.concat_map
          (fun core -> [ { core; coin = false }; { core; coin = true } ])
          (p.Protocol.domain i));
    actions = List.map transform_action p.Protocol.actions;
    equal = (fun a b -> p.Protocol.equal a.core b.core && a.coin = b.coin);
    pp =
      (fun fmt s ->
        Format.fprintf fmt "%a%s" p.Protocol.pp s.core (if s.coin then "+" else "-"));
    randomized = true;
  }

let lift_spec spec =
  let projected = Spec.project (fun s -> s.core) spec in
  (* Steps whose coin tosses all fail leave the projection unchanged; a
     specification of the original system must accept such stuttering
     (the projected behaviour is what SP constrains). Structural
     equality is adequate here because protocol states are plain
     values. *)
  let step_ok =
    Option.map
      (fun ok before after ->
        let b = project_config before and a = project_config after in
        b = a || ok b a)
      spec.Spec.step_ok
  in
  { projected with Spec.step_ok }
