(** Problem specifications as legitimate-configuration predicates.

    Definitions 1-3 of the paper all factor a specification [SP] into a
    set [L] of legitimate configurations (closure) plus correct behavior
    along steps starting in [L]. We mirror that: a spec is a predicate
    on configurations plus an optional predicate on steps, used by the
    checker to verify the strong closure property in full (not only
    that [L] is closed, but that steps within [L] behave correctly —
    e.g. that the token moves to the successor in Algorithm 1). *)

type 'a t = {
  name : string;
  legitimate : 'a array -> bool;
  step_ok : ('a array -> 'a array -> bool) option;
      (** [step_ok before after] for steps whose source is in [L];
          [None] means any step between legitimate configurations is
          acceptable. *)
}

val make : ?step_ok:('a array -> 'a array -> bool) -> name:string -> ('a array -> bool) -> 'a t

val terminal_spec : name:string -> 'a Protocol.t -> 'a t
(** The "silent" specification whose legitimate configurations are
    exactly the terminal ones — what Algorithm 2 and Algorithm 3
    stabilize to. *)

val project : ('b -> 'a) -> 'a t -> 'b t
(** [project f spec] pre-composes every local state with [f]; used to
    lift a spec through the Section 4 transformer (whose states carry an
    extra coin field). *)
