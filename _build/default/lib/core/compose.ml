type ('a, 'b) layered = { base : 'a; overlay : 'b }

let base_config cfg = Array.map (fun s -> s.base) cfg
let overlay_config cfg = Array.map (fun s -> s.overlay) cfg

let collateral ~name ~base ~overlay_domain ~overlay_actions ~overlay_equal ~overlay_pp
    ?(overlay_randomized = false) () =
  let lift_base_action (a : 'a Protocol.action) : ('a, 'b) layered Protocol.action =
    {
      Protocol.label = a.Protocol.label;
      guard = (fun cfg p -> a.Protocol.guard (base_config cfg) p);
      result =
        (fun cfg p ->
          List.map
            (fun (s, w) -> ({ base = s; overlay = cfg.(p).overlay }, w))
            (a.Protocol.result (base_config cfg) p));
    }
  in
  let base_enabled cfg p = Protocol.is_enabled base (base_config cfg) p in
  let guard_overlay (a : ('a, 'b) layered Protocol.action) =
    {
      a with
      Protocol.guard = (fun cfg p -> (not (base_enabled cfg p)) && a.Protocol.guard cfg p);
      result =
        (fun cfg p ->
          (* Write protection: whatever the overlay statement returns,
             the base component stays put. *)
          List.map (fun (s, w) -> ({ s with base = cfg.(p).base }, w)) (a.Protocol.result cfg p));
    }
  in
  {
    Protocol.name;
    graph = base.Protocol.graph;
    domain =
      (fun p ->
        List.concat_map
          (fun b -> List.map (fun o -> { base = b; overlay = o }) (overlay_domain p))
          (base.Protocol.domain p));
    actions =
      List.map lift_base_action base.Protocol.actions
      @ List.map guard_overlay overlay_actions;
    equal =
      (fun s1 s2 -> base.Protocol.equal s1.base s2.base && overlay_equal s1.overlay s2.overlay);
    pp =
      (fun fmt s ->
        Format.fprintf fmt "%a/%a" base.Protocol.pp s.base overlay_pp s.overlay);
    randomized = base.Protocol.randomized || overlay_randomized;
  }

let lift_base_spec spec =
  let projected = Spec.project (fun s -> s.base) spec in
  let step_ok =
    Option.map
      (fun ok before after ->
        let b = base_config before and a = base_config after in
        b = a || ok b a)
      spec.Spec.step_ok
  in
  { projected with Spec.step_ok }
