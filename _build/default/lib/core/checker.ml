type graph = {
  fwd : (int list * int array) list array;
  mutable rev : int list array option;
      (* reverse adjacency, built on first demand and shared by every
         pass that needs it (possible convergence, best-case BFS) *)
}

(* Instrumentation: number of reverse-adjacency constructions and
   terminal scans actually performed, so tests can assert [analyze]
   derives each intermediate structure exactly once per verdict. *)
let reverse_builds = ref 0
let terminal_scans = ref 0
let reverse_build_count () = !reverse_builds
let terminal_scan_count () = !terminal_scans

let expand space cls =
  let n = Statespace.count space in
  let fwd = Array.make n [] in
  for c = 0 to n - 1 do
    fwd.(c) <-
      List.map
        (fun (active, outcomes) ->
          (active, Array.of_list (List.map fst outcomes)))
        (Statespace.transitions space cls c)
  done;
  { fwd; rev = None }

let reverse g =
  match g.rev with
  | Some rev -> rev
  | None ->
    incr reverse_builds;
    let n = Array.length g.fwd in
    let rev = Array.make n [] in
    Array.iteri
      (fun c edges ->
        List.iter
          (fun (_, succs) -> Array.iter (fun c' -> rev.(c') <- c :: rev.(c')) succs)
          edges)
      g.fwd;
    g.rev <- Some rev;
    rev

let graph_edge_count g =
  Array.fold_left
    (fun acc edges ->
      List.fold_left (fun acc (_, succs) -> acc + Array.length succs) acc edges)
    0 g.fwd

type closure_violation =
  | Empty_legitimate_set
  | Escape of { config : int; active : int list; successor : int }
  | Step_spec of { config : int; successor : int }

let check_closure space g spec =
  let legitimate = Statespace.legitimate_set space spec in
  if not (Array.exists Fun.id legitimate) then Error Empty_legitimate_set
  else begin
    let violation = ref None in
    let n = Statespace.count space in
    (let exception Found in
     try
       for c = 0 to n - 1 do
         if legitimate.(c) then
           List.iter
             (fun (active, succs) ->
               Array.iter
                 (fun c' ->
                   if not legitimate.(c') then begin
                     violation := Some (Escape { config = c; active; successor = c' });
                     raise Found
                   end
                   else
                     match spec.Spec.step_ok with
                     | None -> ()
                     | Some ok ->
                       if
                         not
                           (ok (Statespace.config space c) (Statespace.config space c'))
                       then begin
                         violation := Some (Step_spec { config = c; successor = c' });
                         raise Found
                       end)
                 succs)
             g.fwd.(c)
       done
     with Found -> ());
    match !violation with None -> Ok () | Some v -> Error v
  end

let possible_convergence space g ~legitimate =
  let n = Statespace.count space in
  (* Backward BFS from L over reversed edges. *)
  let rev = reverse g in
  let reaches = Array.copy legitimate in
  let queue = Queue.create () in
  Array.iteri (fun c ok -> if ok then Queue.add c queue) legitimate;
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    List.iter
      (fun pred ->
        if not reaches.(pred) then begin
          reaches.(pred) <- true;
          Queue.add pred queue
        end)
      rev.(c)
  done;
  let rec find c = if c >= n then None else if reaches.(c) then find (c + 1) else Some c in
  match find 0 with None -> Ok () | Some c -> Error c

type divergence = Cycle of int list | Dead_end of int

let illegitimate_terminals space ~legitimate =
  incr terminal_scans;
  let n = Statespace.count space in
  let out = ref [] in
  for c = n - 1 downto 0 do
    if (not legitimate.(c)) && Statespace.enabled space c = [] then out := c :: !out
  done;
  !out

(* Iterative depth-first cycle detection on the subgraph of
   configurations outside L. color: 0 white, 1 on current path, 2 done. *)
let find_cycle_outside g ~legitimate =
  let n = Array.length g.fwd in
  let color = Array.make n 0 in
  let parent = Array.make n (-1) in
  let successors c =
    List.concat_map
      (fun (_, succs) ->
        Array.to_list succs |> List.filter (fun c' -> not legitimate.(c')))
      g.fwd.(c)
  in
  let cycle = ref None in
  let exception Found in
  (try
     for start = 0 to n - 1 do
       if (not legitimate.(start)) && color.(start) = 0 then begin
         (* Explicit stack of (node, remaining successors). *)
         let stack = Stack.create () in
         color.(start) <- 1;
         Stack.push (start, ref (successors start)) stack;
         while not (Stack.is_empty stack) do
           let node, remaining = Stack.top stack in
           match !remaining with
           | [] ->
             color.(node) <- 2;
             ignore (Stack.pop stack)
           | next :: rest ->
             remaining := rest;
             if color.(next) = 1 then begin
               (* Back edge: walk parents from [node] to [next]. *)
               let rec collect acc v = if v = next then v :: acc else collect (v :: acc) parent.(v) in
               cycle := Some (collect [] node);
               raise Found
             end
             else if color.(next) = 0 then begin
               color.(next) <- 1;
               parent.(next) <- node;
               Stack.push (next, ref (successors next)) stack
             end
         done
       end
     done
   with Found -> ());
  !cycle

(* Certain convergence given an already-computed terminal list, so
   [analyze] scans for terminals exactly once per verdict. *)
let certain_of_terminals g ~legitimate ~terminals =
  match terminals with
  | c :: _ -> Error (Dead_end c)
  | [] -> (
    match find_cycle_outside g ~legitimate with
    | Some cycle -> Error (Cycle cycle)
    | None -> Ok ())

let certain_convergence space g ~legitimate =
  certain_of_terminals g ~legitimate
    ~terminals:(illegitimate_terminals space ~legitimate)

(* Iterative Tarjan SCC over the subgraph of nodes where alive.(c),
   following only internal edges. Returns SCCs as lists. *)
let sccs g ~alive =
  let n = Array.length g.fwd in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc_stack = Stack.create () in
  let next_index = ref 0 in
  let out = ref [] in
  let successors c =
    List.concat_map
      (fun (_, succs) -> Array.to_list succs |> List.filter (fun c' -> alive.(c')))
      g.fwd.(c)
  in
  let visit root =
    let work = Stack.create () in
    Stack.push (root, ref (successors root)) work;
    index.(root) <- !next_index;
    low.(root) <- !next_index;
    incr next_index;
    Stack.push root scc_stack;
    on_stack.(root) <- true;
    while not (Stack.is_empty work) do
      let node, remaining = Stack.top work in
      match !remaining with
      | next :: rest ->
        remaining := rest;
        if index.(next) < 0 then begin
          index.(next) <- !next_index;
          low.(next) <- !next_index;
          incr next_index;
          Stack.push next scc_stack;
          on_stack.(next) <- true;
          Stack.push (next, ref (successors next)) work
        end
        else if on_stack.(next) then low.(node) <- min low.(node) index.(next)
      | [] ->
        ignore (Stack.pop work);
        if low.(node) = index.(node) then begin
          let rec pop acc =
            let v = Stack.pop scc_stack in
            on_stack.(v) <- false;
            if v = node then v :: acc else pop (v :: acc)
          in
          out := pop [] :: !out
        end;
        (match Stack.top work with
        | parent, _ -> low.(parent) <- min low.(parent) low.(node)
        | exception Stack.Empty -> ())
    done
  in
  for c = 0 to n - 1 do
    if alive.(c) && index.(c) < 0 then visit c
  done;
  !out

(* True iff the SCC (given as a membership test plus member list) has at
   least one internal edge — needed to sustain an infinite execution. *)
let has_internal_edge g in_scc members =
  List.exists
    (fun c ->
      List.exists
        (fun (_, succs) -> Array.exists (fun c' -> in_scc c') succs)
        g.fwd.(c))
    members

let enabled_in space members =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c -> List.iter (fun p -> Hashtbl.replace seen p ()) (Statespace.enabled space c))
    members;
  seen

(* Processes firing on internal edges of the member set. *)
let firing_in g in_scc members =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun (active, succs) ->
          if Array.exists (fun c' -> in_scc c') succs then
            List.iter (fun p -> Hashtbl.replace seen p ()) active)
        g.fwd.(c))
    members;
  seen

let membership n members =
  let mask = Array.make n false in
  List.iter (fun c -> mask.(c) <- true) members;
  mask

(* Streett refinement for strong fairness: an SCC is accepting if every
   process enabled somewhere inside also fires inside; otherwise prune
   the states where the never-firing processes are enabled and
   recurse. *)
let strongly_fair_divergence space g ~legitimate =
  let n = Array.length g.fwd in
  let rec search alive =
    let components = sccs g ~alive in
    let try_component members =
      let mask = membership n members in
      let in_scc c = mask.(c) in
      if not (has_internal_edge g in_scc members) then None
      else begin
        let enabled = enabled_in space members in
        let firing = firing_in g in_scc members in
        let bad =
          Hashtbl.fold
            (fun p () acc -> if Hashtbl.mem firing p then acc else p :: acc)
            enabled []
        in
        match bad with
        | [] -> Some (List.sort compare members)
        | _ ->
          (* Remove states where a never-firing process is enabled. *)
          let alive' = Array.make n false in
          let kept = ref 0 in
          List.iter
            (fun c ->
              let here = Statespace.enabled space c in
              if not (List.exists (fun p -> List.mem p here) bad) then begin
                alive'.(c) <- true;
                incr kept
              end)
            members;
          if !kept = 0 then None else search alive'
      end
    in
    List.fold_left
      (fun acc members -> match acc with Some _ -> acc | None -> try_component members)
      None components
  in
  let alive = Array.map not legitimate in
  search alive

(* Weak fairness needs no refinement: acceptance is monotone in the
   component (see the design notes) — check maximal SCCs only. *)
let weakly_fair_divergence space g ~legitimate =
  let n = Array.length g.fwd in
  let alive = Array.map not legitimate in
  let components = sccs g ~alive in
  let accepting members =
    let mask = membership n members in
    let in_scc c = mask.(c) in
    if not (has_internal_edge g in_scc members) then false
    else begin
      let firing = firing_in g in_scc members in
      let everywhere_enabled p =
        List.for_all (fun c -> List.mem p (Statespace.enabled space c)) members
      in
      let processes = enabled_in space members in
      Hashtbl.fold
        (fun p () acc -> acc && (Hashtbl.mem firing p || not (everywhere_enabled p)))
        processes true
    end
  in
  List.find_opt accepting components |> Option.map (List.sort compare)

type verdict = {
  closure : (unit, closure_violation) result;
  possible : (unit, int) result;
  certain : (unit, divergence) result;
  strongly_fair_diverges : int list option;
  weakly_fair_diverges : int list option;
  dead_ends : int list;
}

let analyze space cls spec =
  let g = expand space cls in
  let legitimate = Statespace.legitimate_set space spec in
  (* Shared intermediates: the reverse adjacency (memoized on [g]) and
     the terminal list are each derived exactly once per verdict. *)
  let terminals = illegitimate_terminals space ~legitimate in
  {
    closure = check_closure space g spec;
    possible = possible_convergence space g ~legitimate;
    certain = certain_of_terminals g ~legitimate ~terminals;
    strongly_fair_diverges = strongly_fair_divergence space g ~legitimate;
    weakly_fair_diverges = weakly_fair_divergence space g ~legitimate;
    dead_ends = terminals;
  }

let weak_stabilizing v = Result.is_ok v.closure && Result.is_ok v.possible

let self_stabilizing v = Result.is_ok v.closure && Result.is_ok v.certain

let self_stabilizing_strongly_fair v =
  Result.is_ok v.closure && v.dead_ends = [] && v.strongly_fair_diverges = None
  && Result.is_ok v.possible

let self_stabilizing_weakly_fair v =
  Result.is_ok v.closure && v.dead_ends = [] && v.weakly_fair_diverges = None
  && Result.is_ok v.possible

let pp_verdict fmt v =
  let yesno b = if b then "yes" else "no" in
  Format.fprintf fmt
    "@[<v>closure: %s@,possible convergence: %s@,certain convergence: %s@,strongly-fair divergence: %s@,weakly-fair divergence: %s@,illegitimate terminals: %d@]"
    (yesno (Result.is_ok v.closure))
    (yesno (Result.is_ok v.possible))
    (yesno (Result.is_ok v.certain))
    (match v.strongly_fair_diverges with None -> "none" | Some w -> Printf.sprintf "witness of %d states" (List.length w))
    (match v.weakly_fair_diverges with None -> "none" | Some w -> Printf.sprintf "witness of %d states" (List.length w))
    (List.length v.dead_ends)

let pseudo_stabilizing space g ~legitimate =
  match illegitimate_terminals space ~legitimate with
  | c :: _ -> Error (Dead_end c)
  | [] ->
    let n = Array.length g.fwd in
    let alive = Array.make n true in
    let offending =
      List.find_opt
        (fun members ->
          let mask = membership n members in
          has_internal_edge g (fun c -> mask.(c)) members
          && List.exists (fun c -> not legitimate.(c)) members)
        (sccs g ~alive)
    in
    (match offending with
    | Some members -> Error (Cycle (List.sort compare members))
    | None -> Ok ())

let hamming space c1 c2 =
  let p = Statespace.protocol space in
  if Array.length c1 <> Array.length c2 then
    invalid_arg "Checker.hamming: configuration length mismatch";
  let count = ref 0 in
  Array.iteri (fun i s -> if not (p.Protocol.equal s c2.(i)) then incr count) c1;
  !count

(* Configurations reachable from L by corrupting at most k process
   memories: BFS in the "one corruption" graph. *)
let k_faulty_set space ~legitimate ~k =
  let enc = Statespace.encoding space in
  let n = Statespace.count space in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  Array.iteri
    (fun c ok ->
      if ok then begin
        dist.(c) <- 0;
        Queue.add c queue
      end)
    legitimate;
  let p = Statespace.protocol space in
  let processes = Stabgraph.Graph.size p.Protocol.graph in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    if dist.(c) < k then begin
      let cfg = Encoding.decode enc c in
      for i = 0 to processes - 1 do
        let original = cfg.(i) in
        List.iter
          (fun s ->
            if not (p.Protocol.equal s original) then begin
              cfg.(i) <- s;
              let c' = Encoding.encode enc cfg in
              if dist.(c') = max_int then begin
                dist.(c') <- dist.(c) + 1;
                Queue.add c' queue
              end
            end)
          (p.Protocol.domain i);
        cfg.(i) <- original
      done
    end
  done;
  Array.map (fun d -> d <> max_int) dist

let k_stabilizing space g ~legitimate ~k =
  let faulty = k_faulty_set space ~legitimate ~k in
  (* Forward closure of the faulty set. *)
  let n = Array.length g.fwd in
  let reachable = Array.make n false in
  let queue = Queue.create () in
  Array.iteri
    (fun c f ->
      if f then begin
        reachable.(c) <- true;
        Queue.add c queue
      end)
    faulty;
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    List.iter
      (fun (_, succs) ->
        Array.iter
          (fun c' ->
            if not reachable.(c') then begin
              reachable.(c') <- true;
              Queue.add c' queue
            end)
          succs)
      g.fwd.(c)
  done;
  (* Certain convergence restricted to the reachable sub-system:
     configurations outside it are treated as if legitimate (they
     cannot occur). *)
  let restricted = Array.init n (fun c -> legitimate.(c) || not reachable.(c)) in
  let dead_end =
    List.find_opt (fun c -> reachable.(c)) (illegitimate_terminals space ~legitimate)
  in
  match dead_end with
  | Some c -> Error (Dead_end c)
  | None -> (
    match find_cycle_outside g ~legitimate:restricted with
    | Some cycle -> Error (Cycle cycle)
    | None -> Ok ())

let best_case_steps _space g ~legitimate =
  let n = Array.length g.fwd in
  let rev = reverse g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  Array.iteri
    (fun c ok ->
      if ok then begin
        dist.(c) <- 0;
        Queue.add c queue
      end)
    legitimate;
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    List.iter
      (fun pred ->
        if dist.(pred) = max_int then begin
          dist.(pred) <- dist.(c) + 1;
          Queue.add pred queue
        end)
      rev.(c)
  done;
  dist

let worst_case_steps space g ~legitimate =
  match certain_convergence space g ~legitimate with
  | Error (Cycle _ | Dead_end _) -> None
  | Ok () ->
    (* The C \ L subgraph is a DAG: longest-path DP in reverse
       topological order (iterative Kahn peeling, so deep spaces cannot
       blow the OCaml stack). A successor inside L ends the escape in
       one step; a successor outside contributes 1 + its own value. *)
    let n = Array.length g.fwd in
    let value = Array.make n 0 in
    let pending = Array.make n 0 in
    let preds = Array.make n [] in
    for c = 0 to n - 1 do
      if not legitimate.(c) then
        List.iter
          (fun (_, succs) ->
            Array.iter
              (fun c' ->
                if legitimate.(c') then value.(c) <- max value.(c) 1
                else begin
                  pending.(c) <- pending.(c) + 1;
                  preds.(c') <- c :: preds.(c')
                end)
              succs)
          g.fwd.(c)
    done;
    let queue = Queue.create () in
    for c = 0 to n - 1 do
      if (not legitimate.(c)) && pending.(c) = 0 then Queue.add c queue
    done;
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      List.iter
        (fun p ->
          value.(p) <- max value.(p) (1 + value.(c));
          pending.(p) <- pending.(p) - 1;
          if pending.(p) = 0 then Queue.add p queue)
        preds.(c)
    done;
    Some value

let convergence_radius_histogram space g ~legitimate =
  let dist = best_case_steps space g ~legitimate in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      let key = if d = max_int then -1 else d in
      Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    dist;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let synchronous_lasso space ~init =
  if (Statespace.protocol space).Protocol.randomized then
    invalid_arg "Checker.synchronous_lasso: randomized protocol";
  let seen = Hashtbl.create 64 in
  let rec go c position acc =
    match Hashtbl.find_opt seen c with
    | Some first ->
      let visited = List.rev acc in
      let prefix = List.filteri (fun i _ -> i < first) visited in
      let cycle = List.filteri (fun i _ -> i >= first) visited in
      (prefix, cycle)
    | None -> (
      Hashtbl.add seen c position;
      match Statespace.transitions space Statespace.Synchronous c with
      | [] -> (List.rev (c :: acc), [])
      | [ (_, [ (c', _) ]) ] -> go c' (position + 1) (c :: acc)
      | _ -> invalid_arg "Checker.synchronous_lasso: non-deterministic step")
  in
  go init 0 []

let sync_orbit_census space =
  if (Statespace.protocol space).Protocol.randomized then
    invalid_arg "Checker.sync_orbit_census: randomized protocol";
  let n = Statespace.count space in
  (* successor function: -1 for terminal configurations *)
  let succ = Array.make n (-1) in
  for c = 0 to n - 1 do
    match Statespace.transitions space Statespace.Synchronous c with
    | [] -> ()
    | [ (_, [ (c', _) ]) ] -> succ.(c) <- c'
    | _ -> invalid_arg "Checker.sync_orbit_census: non-deterministic step"
  done;
  (* Standard functional-graph coloring: walk unvisited paths, detect
     the cycle (or terminal) they fall into, memoize the limit length
     for every node on the path. *)
  let limit = Array.make n (-2) in
  for start = 0 to n - 1 do
    if limit.(start) = -2 then begin
      (* Walk forward, marking the path with a temporary stamp. *)
      let path = ref [] in
      let on_path = Hashtbl.create 16 in
      let rec walk c position =
        if c = -1 then 0 (* fell off a terminal configuration *)
        else if limit.(c) <> -2 then limit.(c)
        else
          match Hashtbl.find_opt on_path c with
          | Some first ->
            (* new cycle of length position - first *)
            position - first
          | None ->
            Hashtbl.add on_path c position;
            path := c :: !path;
            walk succ.(c) (position + 1)
      in
      let length = walk start 0 in
      List.iter (fun c -> if limit.(c) = -2 then limit.(c) <- length) !path
    end
  done;
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun l -> Hashtbl.replace tbl l (1 + Option.value (Hashtbl.find_opt tbl l) ~default:0))
    limit;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl [] |> List.sort compare

let sync_closed_set space member =
  let n = Statespace.count space in
  let result = ref None in
  (let exception Found in
   try
     for c = 0 to n - 1 do
       if member (Statespace.config space c) then
         List.iter
           (fun (_, outcomes) ->
             List.iter
               (fun (c', _) ->
                 if not (member (Statespace.config space c')) then begin
                   result := Some (c, c');
                   raise Found
                 end)
               outcomes)
           (Statespace.transitions space Statespace.Synchronous c)
     done
   with Found -> ());
  !result
