lib/core/markov.ml: Array Checker Float Fun Hashtbl List Option Printf Queue Stablinalg Stack Statespace
