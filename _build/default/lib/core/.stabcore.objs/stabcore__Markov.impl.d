lib/core/markov.ml: Array Float Fun Hashtbl List Option Printf Queue Stablinalg Stack Statespace
