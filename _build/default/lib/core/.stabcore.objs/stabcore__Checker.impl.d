lib/core/checker.ml: Array Encoding Format Fun Hashtbl List Option Printf Protocol Queue Result Spec Stabgraph Stack Statespace
