lib/core/checker.ml: Array Bitset Domain Encoding Format Fun Hashtbl List Mutex Option Printf Protocol Queue Result Spec Stabgraph Stack Statespace
