lib/core/faults.mli: Montecarlo Protocol Scheduler Spec Stabrng
