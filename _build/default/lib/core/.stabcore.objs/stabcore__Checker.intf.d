lib/core/checker.mli: Format Spec Statespace
