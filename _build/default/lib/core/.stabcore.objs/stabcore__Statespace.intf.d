lib/core/statespace.mli: Encoding Format Protocol Spec
