lib/core/trace.ml: Engine Format List Protocol
