lib/core/scheduler.ml: List Printf Stabrng
