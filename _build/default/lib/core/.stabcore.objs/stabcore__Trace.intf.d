lib/core/trace.mli: Engine Format Protocol
