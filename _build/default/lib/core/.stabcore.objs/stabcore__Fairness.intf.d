lib/core/fairness.mli: Engine Protocol
