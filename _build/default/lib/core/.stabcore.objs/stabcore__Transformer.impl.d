lib/core/transformer.ml: Array Format List Option Protocol Spec
