lib/core/statespace.ml: Array Encoding Format Hashtbl List Printf Protocol Spec
