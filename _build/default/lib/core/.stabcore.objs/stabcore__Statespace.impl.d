lib/core/statespace.ml: Array Atomic Encoding Format Hashtbl List Printf Protocol Spec
