lib/core/onthefly.ml: Array Hashtbl List Queue Spec Stack Statespace
