lib/core/compose.mli: Format Protocol Spec
