lib/core/spec.ml: Array Option Protocol
