lib/core/encoding.mli: Protocol
