lib/core/encoding.ml: Array Protocol Stabgraph
