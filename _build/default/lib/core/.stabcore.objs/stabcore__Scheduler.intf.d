lib/core/scheduler.mli: Stabrng
