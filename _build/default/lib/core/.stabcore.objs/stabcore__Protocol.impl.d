lib/core/protocol.ml: Array Float Format List Stabgraph Stabrng
