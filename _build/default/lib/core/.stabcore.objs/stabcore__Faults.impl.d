lib/core/faults.ml: Array Engine Fun List Montecarlo Protocol Stabrng
