lib/core/bitset.mli:
