lib/core/transformer.mli: Protocol Spec
