lib/core/onthefly.mli: Spec Statespace
