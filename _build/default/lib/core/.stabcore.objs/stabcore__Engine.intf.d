lib/core/engine.mli: Protocol Scheduler Spec Stabrng
