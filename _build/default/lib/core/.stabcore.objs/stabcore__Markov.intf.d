lib/core/markov.mli: Statespace
