lib/core/compose.ml: Array Format List Option Protocol Spec
