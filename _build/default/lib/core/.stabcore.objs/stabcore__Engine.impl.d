lib/core/engine.ml: Array List Printf Protocol Scheduler Spec
