lib/core/montecarlo.ml: Array Domain Engine Format List Protocol Stabrng Stabstats
