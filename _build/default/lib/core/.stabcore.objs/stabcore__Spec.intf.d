lib/core/spec.mli: Protocol
