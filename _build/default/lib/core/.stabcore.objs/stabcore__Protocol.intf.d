lib/core/protocol.mli: Format Stabgraph Stabrng
