lib/core/montecarlo.mli: Format Protocol Scheduler Spec Stabrng Stabstats
