lib/core/fairness.ml: Array Engine Hashtbl List Protocol Stabgraph
