lib/core/bitset.ml: Array Bytes Char List Printf
