(** Transient-fault injection.

    Self-stabilization is exactly resilience to transient memory
    corruption: a fault flips some process memories to arbitrary
    values, and the protocol must recover. These helpers corrupt
    configurations (the fault model behind k-stabilization, where the
    fault count is the number of memories changed) and measure
    recovery, driving the fault-recovery experiments (E10). *)

val corrupt :
  Stabrng.Rng.t -> 'a Protocol.t -> 'a array -> faults:int -> 'a array
(** [corrupt rng p cfg ~faults] returns a fresh configuration with
    exactly [min faults n] distinct processes reassigned a {e
    different} uniformly random state from their domain (a process
    whose domain is a singleton cannot be corrupted and is skipped).
    The input is not modified. *)

type recovery = {
  faults : int;
  steps : int option;  (** steps to re-reach [L]; [None] on timeout *)
  rounds : int option;
}

val recovery_time :
  max_steps:int ->
  Stabrng.Rng.t ->
  'a Protocol.t ->
  'a Scheduler.t ->
  'a Spec.t ->
  from:'a array ->
  faults:int ->
  recovery
(** Corrupt [from] (assumed legitimate) with [faults] faults, then run
    until the legitimate set is re-reached. *)

val recovery_profile :
  runs:int ->
  max_steps:int ->
  Stabrng.Rng.t ->
  'a Protocol.t ->
  'a Scheduler.t ->
  'a Spec.t ->
  from:'a array ->
  faults:int ->
  Montecarlo.result
(** Repeat {!recovery_time} with independent corruption draws and
    scheduler randomness. *)
