type assessment = {
  strongly_fair : bool;
  weakly_fair : bool;
  offenders : int list;
}

let check_cyclic protocol cycle =
  match cycle with
  | [] -> invalid_arg "Fairness: empty cycle"
  | first :: _ ->
    let rec go = function
      | [ last ] ->
        if not (Protocol.equal_config protocol last.Engine.after first.Engine.before)
        then invalid_arg "Fairness: events do not close a cycle"
      | e :: (e' :: _ as rest) ->
        if not (Protocol.equal_config protocol e.Engine.after e'.Engine.before) then
          invalid_arg "Fairness: events are not contiguous";
        go rest
      | [] -> ()
    in
    go cycle

let assess_lasso protocol ~cycle =
  check_cyclic protocol cycle;
  let n = Stabgraph.Graph.size protocol.Protocol.graph in
  let fires = Array.make n false in
  let enabled_somewhere = Array.make n false in
  let enabled_everywhere = Array.make n true in
  List.iter
    (fun e ->
      List.iter (fun (p, _) -> fires.(p) <- true) e.Engine.fired;
      let enabled_here p = Protocol.is_enabled protocol e.Engine.before p in
      for p = 0 to n - 1 do
        if enabled_here p then enabled_somewhere.(p) <- true
        else enabled_everywhere.(p) <- false
      done)
    cycle;
  let strong_offenders = ref [] in
  let weak_offenders = ref [] in
  for p = n - 1 downto 0 do
    if enabled_somewhere.(p) && not fires.(p) then strong_offenders := p :: !strong_offenders;
    if enabled_everywhere.(p) && not fires.(p) then weak_offenders := p :: !weak_offenders
  done;
  let strongly_fair = !strong_offenders = [] in
  let weakly_fair = !weak_offenders = [] in
  {
    strongly_fair;
    weakly_fair;
    offenders = (if strongly_fair then !weak_offenders else !strong_offenders);
  }

let is_gouda_fair_cycle protocol ~cycle =
  check_cyclic protocol cycle;
  (* Transitions taken in the cycle, as (before, fired set) pairs keyed
     by the single activated process — Gouda fairness over the central
     scheduler's transition space. *)
  let taken = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter (fun (p, _) -> Hashtbl.replace taken (e.Engine.before, p) ()) e.Engine.fired)
    cycle;
  (* Configurations occurring infinitely often are exactly the cycle's;
     every centrally-enabled transition from them must be taken. *)
  List.for_all
    (fun e ->
      List.for_all
        (fun p -> Hashtbl.mem taken (e.Engine.before, p))
        (Protocol.enabled_processes protocol e.Engine.before))
    cycle
