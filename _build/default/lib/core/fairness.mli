(** Fairness of concrete (ultimately periodic) executions.

    The scheduler taxonomy of Section 2 constrains infinite executions.
    A finite trace can never witness unfairness, but an ultimately
    periodic execution — a prefix followed by a cycle repeated forever —
    can be judged exactly. The Theorem 6 counter-example is of this
    shape: two tokens alternating around a ring forever, which is
    strongly fair yet never converges. These helpers decide the
    fairness of such lassos. *)

type assessment = {
  strongly_fair : bool;
      (** every process enabled in some cycle configuration fires
          during the cycle *)
  weakly_fair : bool;
      (** every process enabled in all cycle configurations fires
          during the cycle *)
  offenders : int list;
      (** processes breaking the strongest failed level, sorted *)
}

val assess_lasso : 'a Protocol.t -> cycle:'a Engine.event list -> assessment
(** Judge the infinite execution that repeats [cycle] forever. The
    cycle must be non-empty and genuinely cyclic (each event's [after]
    is the next event's [before], last wrapping to first) —
    [Invalid_argument] otherwise. *)

val is_gouda_fair_cycle : 'a Protocol.t -> cycle:'a Engine.event list -> bool
(** Gouda's strong fairness (Theorem 5): every transition enabled from
    a configuration occurring infinitely often must occur infinitely
    often. For a lasso this requires every scheduler choice available
    in a cycle configuration to appear in the cycle; the paper's
    Theorem 6 separates this from [strongly_fair]. The check is against
    the central scheduler's choices (single-process steps), which is
    enough to witness the separation. *)
