(** Human-readable rendering of executions, in the style of the paper's
    Figures 1 and 2: one line per configuration, annotated with the
    processes that fire and the action labels. *)

val pp : 'a Protocol.t -> Format.formatter -> 'a Engine.trace -> unit
(** Full trace: initial configuration, then one line per step showing
    the fired (process, action) pairs and the resulting
    configuration. *)

val pp_compact : 'a Protocol.t -> Format.formatter -> 'a Engine.trace -> unit
(** Configurations only, one per line. *)

val pp_event : 'a Protocol.t -> Format.formatter -> 'a Engine.event -> unit

val to_string : 'a Protocol.t -> 'a Engine.trace -> string
