(** Fixed-length bit vectors over configuration codes.

    The exhaustive analyses in {!Checker} manipulate many sets of
    configurations (reached, alive, on-stack, membership masks). A
    [bool array] spends a word per element; this Bytes-backed
    representation spends a bit, which keeps whole-space masks resident
    in cache for the packed-graph passes. Indices are [0 .. length-1];
    out-of-range access raises [Invalid_argument]. *)

type t

val create : int -> t
(** All-zero set of the given length. *)

val length : t -> int

val mem : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val copy : t -> t

val cardinal : t -> int
(** Number of set bits (byte-wise table lookup). *)

val iter : (int -> unit) -> t -> unit
(** Applies the function to every set index, ascending. *)

val fold : ('acc -> int -> 'acc) -> t -> 'acc -> 'acc
(** Folds over set indices, ascending. *)

val is_empty : t -> bool

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val complement : t -> t
(** Fresh set with every bit flipped. *)

val elements : t -> int list
(** Set indices, ascending. *)
