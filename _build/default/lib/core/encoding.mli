(** Dense integer encoding of configurations.

    The explicit-state checker and the Markov analysis index the whole
    configuration space [C] (the paper assumes [I = C]) by integers.
    With per-process finite domains [D_0, ..., D_{n-1}], configurations
    are mixed-radix numerals: the code of a configuration is
    [sum_i index(s_i) * prod_{j<i} |D_j|]. *)

type 'a t

val make : equal:('a -> 'a -> bool) -> 'a list array -> 'a t
(** [make ~equal domains] requires every domain to be non-empty and
    duplicate-free (w.r.t. [equal]), and the total space size
    [prod |D_i|] to fit in an OCaml [int]; raises [Invalid_argument]
    otherwise. *)

val of_protocol : 'a Protocol.t -> 'a t
(** Encoding for the full configuration space of a protocol. *)

val count : 'a t -> int
(** Total number of configurations, the paper's [|C|]. *)

val processes : 'a t -> int

val encode : 'a t -> 'a array -> int
(** Raises [Invalid_argument] if some state is outside its domain. *)

val decode : 'a t -> int -> 'a array
(** Fresh array; inverse of {!encode}. *)

val iter : 'a t -> (int -> 'a array -> unit) -> unit
(** Iterate over the full space in code order. The configuration array
    is reused between calls; copy it if you keep it. *)
