type 'a t = {
  name : string;
  legitimate : 'a array -> bool;
  step_ok : ('a array -> 'a array -> bool) option;
}

let make ?step_ok ~name legitimate = { name; legitimate; step_ok }

let terminal_spec ~name protocol =
  { name; legitimate = Protocol.is_terminal protocol; step_ok = None }

let project f spec =
  {
    name = spec.name;
    legitimate = (fun cfg -> spec.legitimate (Array.map f cfg));
    step_ok =
      Option.map
        (fun ok before after -> ok (Array.map f before) (Array.map f after))
        spec.step_ok;
  }
