let corrupt rng (p : 'a Protocol.t) cfg ~faults =
  if faults < 0 then invalid_arg "Faults.corrupt: negative fault count";
  let n = Array.length cfg in
  let out = Array.copy cfg in
  (* Choose the victims: a random subset of [faults] distinct
     processes, skipping those with singleton domains. *)
  let candidates =
    Array.of_list
      (List.filter (fun i -> List.length (p.Protocol.domain i) > 1) (List.init n Fun.id))
  in
  Stabrng.Rng.shuffle rng candidates;
  let victims = min faults (Array.length candidates) in
  for v = 0 to victims - 1 do
    let i = candidates.(v) in
    let others =
      List.filter (fun s -> not (p.Protocol.equal s out.(i))) (p.Protocol.domain i)
    in
    out.(i) <- List.nth others (Stabrng.Rng.int rng (List.length others))
  done;
  out

type recovery = {
  faults : int;
  steps : int option;
  rounds : int option;
}

let recovery_time ~max_steps rng protocol scheduler spec ~from ~faults =
  let corrupted = corrupt rng protocol from ~faults in
  match Engine.convergence_cost ~max_steps rng protocol scheduler spec ~init:corrupted with
  | Some (steps, rounds) -> { faults; steps = Some steps; rounds = Some rounds }
  | None -> { faults; steps = None; rounds = None }

let recovery_profile ~runs ~max_steps rng protocol scheduler spec ~from ~faults =
  let times = ref [] in
  let rounds = ref [] in
  let timeouts = ref 0 in
  for _ = 1 to runs do
    let stream = Stabrng.Rng.split rng in
    match recovery_time ~max_steps stream protocol scheduler spec ~from ~faults with
    | { steps = Some s; rounds = Some r; _ } ->
      times := s :: !times;
      rounds := r :: !rounds
    | _ -> incr timeouts
  done;
  Montecarlo.of_samples
    ~times:(Array.of_list (List.rev !times))
    ~rounds:(Array.of_list (List.rev !rounds))
    ~timeouts:!timeouts
