(* Benchmark harness: one Bechamel test per reproduced figure/table.

   Part 1 (bechamel) times the computation that regenerates each
   artifact — figure replays, theorem checks, quantitative sweeps — so
   regressions in the checker or the Markov engine show up as timing
   changes here.

   Part 2 prints the artifacts themselves: the per-theorem verdict
   tables and the E1-E4 stabilization-time tables recorded in
   EXPERIMENTS.md. The run aborts with a non-zero exit code if any
   theorem check fails, so `dune exec bench/main.exe` doubles as a
   repro gate. *)

open Bechamel
module Json = Stabobs.Json
module Obs = Stabobs.Obs

let stage_unit f = Staged.stage (fun () -> ignore (f ()))

(* The resilience campaign of ISSUE 2: exact per-k recovery metrics on
   the packed graph (token ring, N = 7, k = 1..3) plus a 500-run
   availability estimate under periodic injection. *)
let faults_campaign () =
  let n = 7 in
  let p = Stabalgo.Token_ring.make ~n in
  let spec = Stabalgo.Token_ring.spec ~n in
  let space = Stabcore.Statespace.build p in
  let metrics =
    Stabcore.Resilience.analyze space Stabcore.Statespace.Central spec ~ks:[ 0; 1; 2; 3 ]
  in
  let plan = Stabcore.Faults.periodic p ~gap:50 ~faults:1 in
  let availability =
    Stabcore.Faults.availability_profile ~runs:500 ~horizon:2000
      (Stabrng.Rng.create 42) p
      (Stabcore.Scheduler.central_random ())
      spec ~plan
      ~init:(Stabalgo.Token_ring.legitimate_config ~n)
  in
  (metrics, availability)

let print_faults_campaign () =
  let metrics, availability = faults_campaign () in
  let t =
    Stabexp.Report.create
      ~title:"faults-campaign: token ring N=7, exact recovery radius + availability"
      ~columns:
        [ "k"; "faulty"; "worst case"; "prob-1"; "E[recovery] mean"; "E[recovery] max" ]
  in
  List.iter
    (fun (m : Stabcore.Resilience.metric) ->
      Stabexp.Report.add_row t
        [
          Stabexp.Report.cell_int m.Stabcore.Resilience.k;
          Stabexp.Report.cell_int m.Stabcore.Resilience.faulty_configs;
          (match m.Stabcore.Resilience.worst_case with
          | Some w -> Stabexp.Report.cell_int w
          | None -> "unbounded");
          Stabexp.Report.cell_bool m.Stabcore.Resilience.prob_one;
          (match m.Stabcore.Resilience.expected_mean with
          | Some v -> Stabexp.Report.cell_float v
          | None -> "-");
          (match m.Stabcore.Resilience.expected_max with
          | Some v -> Stabexp.Report.cell_float v
          | None -> "-");
        ])
    metrics;
  Stabexp.Report.print t;
  let r = Stabcore.Resilience.radius_of metrics in
  Printf.printf
    "   radius (k <= %d): adversarial %d, probabilistic %d\n\
    \   availability under periodic(gap=50,k=1), 500 runs: mean %.4f [%.4f, %.4f]\n\n"
    r.Stabcore.Resilience.max_k r.Stabcore.Resilience.adversarial
    r.Stabcore.Resilience.probabilistic availability.Stabstats.Stats.mean
    availability.Stabstats.Stats.ci95_low availability.Stabstats.Stats.ci95_high

(* Symmetry-quotient vs full-space analysis of the same instance. The
   quotient entries pay for group validation and canonicalization
   inside the timed region and still come out ahead whenever the
   validated group is nontrivial (token ring: the 8 rotations).
   leader-tree documents the sound fallback: Algorithm 2's local-index
   arithmetic leaves only the identity, so its quotient entry measures
   the full space plus the (cheap) rejection sweep — see
   docs/symmetry.md. *)
let analyze_token_ring ~quotient () =
  let n = 8 in
  let p = Stabalgo.Token_ring.make ~n in
  let space = Stabcore.Statespace.build p in
  let space = if quotient then Stabcore.Statespace.quotient space else space in
  Stabcore.Checker.analyze space Stabcore.Statespace.Distributed
    (Stabalgo.Token_ring.spec ~n)

let analyze_leader_tree ~quotient () =
  let g = Stabgraph.Graph.star 7 in
  let p = Stabalgo.Leader_tree.make g in
  let space = Stabcore.Statespace.build p in
  let space =
    if quotient then
      Stabcore.Statespace.quotient ~relabel:(Stabalgo.Leader_tree.relabel g) space
    else space
  in
  Stabcore.Checker.analyze space Stabcore.Statespace.Distributed
    (Stabalgo.Leader_tree.spec g)

let tests =
  [
    Test.make ~name:"full-token-ring" (stage_unit (analyze_token_ring ~quotient:false));
    Test.make ~name:"quotient-token-ring"
      (stage_unit (analyze_token_ring ~quotient:true));
    Test.make ~name:"full-leader-tree" (stage_unit (analyze_leader_tree ~quotient:false));
    Test.make ~name:"quotient-leader-tree"
      (stage_unit (analyze_leader_tree ~quotient:true));
    Test.make ~name:"fig1-token-trace" (stage_unit (fun () -> Stabexp.Figures.fig1 ()));
    Test.make ~name:"fig2-leader-convergence" (stage_unit Stabexp.Figures.fig2);
    Test.make ~name:"fig3-sync-divergence" (stage_unit Stabexp.Figures.fig3);
    Test.make ~name:"thm1-sync-equivalence" (stage_unit Stabexp.Theorems.theorem1);
    Test.make ~name:"thm2-weak-not-self"
      (stage_unit (fun () -> Stabexp.Theorems.theorem2 ~max_n:5 ~quotient:true ()));
    Test.make ~name:"thm3-impossibility" (stage_unit Stabexp.Theorems.theorem3);
    Test.make ~name:"thm4-leader-weak"
      (stage_unit (fun () -> Stabexp.Theorems.theorem4 ~max_n:5 ~quotient:true ()));
    Test.make ~name:"thm5-gouda-prob" (stage_unit Stabexp.Theorems.theorem5);
    Test.make ~name:"thm6-gouda-vs-strong" (stage_unit Stabexp.Theorems.theorem6);
    Test.make ~name:"thm7-markov-equivalence" (stage_unit Stabexp.Theorems.theorem7);
    Test.make ~name:"thm8-transformer" (stage_unit Stabexp.Theorems.theorems8_9);
    Test.make ~name:"e1-token-sweep"
      (stage_unit (fun () -> Stabexp.Quantitative.e1_token_sweep ~quick:true ()));
    Test.make ~name:"e2-leader-sweep"
      (stage_unit (fun () -> Stabexp.Quantitative.e2_leader_sweep ~quick:true ()));
    Test.make ~name:"e3-transformer-overhead"
      (stage_unit (fun () -> Stabexp.Quantitative.e3_transformer_overhead ~quick:true ()));
    Test.make ~name:"e4-scheduler-comparison"
      (stage_unit (fun () -> Stabexp.Quantitative.e4_scheduler_comparison ~quick:true ()));
    Test.make ~name:"e5-convergence-radius"
      (stage_unit (fun () -> Stabexp.Quantitative.e5_convergence_radius ~quick:true ()));
    Test.make ~name:"e7-convergence-curves"
      (stage_unit (fun () -> Stabexp.Quantitative.e7_convergence_curves ~quick:true ()));
    Test.make ~name:"p1-portfolio" (stage_unit Stabexp.Portfolio.classify);
    Test.make ~name:"p2-taxonomy" (stage_unit Stabexp.Portfolio.taxonomy);
    Test.make ~name:"e9-sync-orbit-census"
      (stage_unit (fun () -> Stabexp.Quantitative.e9_sync_orbit_census ~quick:true ()));
    Test.make ~name:"e8-dijkstra-threshold"
      (stage_unit (fun () -> Stabexp.Portfolio.dijkstra_k_threshold ~max_n:4 ()));
    Test.make ~name:"faults-campaign" (stage_unit faults_campaign);
    (* The dark-telemetry gate: with no sink installed, a span is one
       atomic load and a branch, and a counter add is dropped before
       touching domain-local state. Timings here must stay within noise
       of an empty loop — a regression means instrumentation started
       taxing the uninstrumented hot path. *)
    Test.make ~name:"obs-span-disabled"
      (Staged.stage (fun () -> Obs.span "bench.noop" ignore));
    Test.make ~name:"obs-counter-disabled"
      (Staged.stage (fun () -> Obs.Counter.add Obs.configs_expanded 1));
  ]

let benchmark () =
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"repro" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  Analyze.all ols Toolkit.Instance.monotonic_clock raw

(* Machine-readable timing record (schema 2): run metadata, one entry
   per artifact, and a per-phase telemetry capture of the reference
   pipeline, so timing comparisons across revisions can be scripted
   instead of scraped from the rendered table. *)
let bench_json_path = "BENCH_checker.json"

let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = try input_line ic with End_of_file -> "unknown" in
    (match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> "unknown")

(* One instrumented pass over the reference pipeline (token ring,
   N = 7: exhaustive verdicts, exact hitting times, 200 sampled runs)
   recorded through the telemetry sinks — the per-phase breakdown that
   rides along with the OLS timings. *)
let capture_profile () =
  let profile = Obs.Profile.create () in
  Obs.install (Obs.Profile.sink profile);
  Obs.Counter.reset_all ();
  Fun.protect ~finally:Obs.clear (fun () ->
      let n = 7 in
      let p = Stabalgo.Token_ring.make ~n in
      let spec = Stabalgo.Token_ring.spec ~n in
      let space = Stabcore.Statespace.build p in
      ignore (Stabcore.Checker.analyze space Stabcore.Statespace.Distributed spec);
      let legitimate = Stabcore.Statespace.legitimate_set space spec in
      let chain = Stabcore.Markov.of_space space Stabcore.Markov.Distributed_uniform in
      ignore (Stabcore.Markov.expected_hitting_times chain ~legitimate);
      ignore
        (Stabcore.Montecarlo.estimate ~runs:200 ~max_steps:1_000_000
           (Stabrng.Rng.create 42) p
           (Stabcore.Scheduler.distributed_random ())
           spec));
  let phases =
    List.map
      (fun (r : Obs.Profile.row) ->
        ( r.Obs.Profile.name,
          Json.Obj
            [
              ("count", Json.Int r.Obs.Profile.count);
              ("total_ns", Json.Int r.Obs.Profile.total_ns);
              ("max_ns", Json.Int r.Obs.Profile.max_ns);
            ] ))
      (Obs.Profile.rows profile)
  in
  let counters =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (Obs.Counter.snapshot ())
  in
  Json.Obj [ ("phases", Json.Obj phases); ("counters", Json.Obj counters) ]

let emit_json timings =
  let artifacts =
    List.map
      (fun (name, time_ns) ->
        ( name,
          Json.Obj
            [
              ( "ns_per_run",
                if Float.is_nan time_ns then Json.Null else Json.Float time_ns );
            ] ))
      timings
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Int 2);
        ( "meta",
          Json.Obj
            [
              ("commit", Json.String (git_commit ()));
              ("ocaml", Json.String Sys.ocaml_version);
              ("domains", Json.Int (Domain.recommended_domain_count ()));
            ] );
        ("artifacts", Json.Obj artifacts);
        ("profile", capture_profile ());
      ]
  in
  let oc = open_out bench_json_path in
  output_string oc (Json.to_string ~minify:false doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote per-artifact timings to %s)\n\n%!" bench_json_path

let print_timings results =
  let table =
    Stabexp.Report.create ~title:"benchmark: time to regenerate each artifact"
      ~columns:[ "artifact"; "time per run"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let time_ns =
        match Analyze.OLS.estimates ols with Some [ t ] -> t | _ -> Float.nan
      in
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
        else Printf.sprintf "%.3f us" (time_ns /. 1e3)
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := (name, (time_ns, [ name; pretty; r2 ])) :: !rows)
    results;
  let sorted = List.sort compare !rows in
  List.iter (fun (_, (_, row)) -> Stabexp.Report.add_row table row) sorted;
  Stabexp.Report.print table;
  emit_json (List.map (fun (name, (time_ns, _)) -> (name, time_ns)) sorted)

let print_figures () =
  let fig1 = Stabexp.Figures.fig1 () in
  print_string fig1.Stabexp.Figures.rendering;
  print_newline ();
  let fig2 = Stabexp.Figures.fig2 () in
  print_string fig2.Stabexp.Figures.rendering;
  print_newline ();
  let fig3 = Stabexp.Figures.fig3 () in
  print_string fig3.Stabexp.Figures.rendering;
  print_newline ()

let print_theorems () =
  let ok = ref true in
  List.iter
    (fun r ->
      Stabexp.Report.print (Stabexp.Theorems.report r);
      let holds = Stabexp.Theorems.all_hold r in
      if not holds then ok := false;
      Printf.printf "   => %s\n\n" (if holds then "VERIFIED" else "FAILED"))
    (Stabexp.Theorems.all ());
  !ok

let print_quantitative () =
  let _, t1 = Stabexp.Quantitative.e1_token_sweep ~quick:true () in
  Stabexp.Report.print t1;
  let _, t2 = Stabexp.Quantitative.e2_leader_sweep ~quick:true () in
  Stabexp.Report.print t2;
  let _, t3 = Stabexp.Quantitative.e3_transformer_overhead ~quick:true () in
  Stabexp.Report.print t3;
  let _, t4 = Stabexp.Quantitative.e4_scheduler_comparison ~quick:true () in
  Stabexp.Report.print t4;
  Stabexp.Report.print (Stabexp.Quantitative.e5_convergence_radius ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e6_steps_vs_rounds ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e7_convergence_curves ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e9_sync_orbit_census ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e10_fault_recovery ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e11_availability ~quick:true ());
  Stabexp.Report.print (Stabexp.Portfolio.dijkstra_k_threshold ());
  let _, portfolio = Stabexp.Portfolio.classify () in
  Stabexp.Report.print portfolio;
  let _, taxonomy = Stabexp.Portfolio.taxonomy () in
  Stabexp.Report.print taxonomy;
  let _, crash = Stabexp.Portfolio.crash_resilience () in
  Stabexp.Report.print crash;
  let _, radii = Stabexp.Portfolio.resilience_radii () in
  Stabexp.Report.print radii;
  print_faults_campaign ()

let () =
  print_endline "=== Part 1: micro-benchmarks (bechamel, OLS on monotonic clock) ===\n";
  print_timings (benchmark ());
  print_endline "=== Part 2: reproduced figures ===\n";
  print_figures ();
  print_endline "=== Part 3: theorem verdicts ===\n";
  let theorems_ok = print_theorems () in
  print_endline "=== Part 4: quantitative experiments (E1-E4) ===\n";
  print_quantitative ();
  if not theorems_ok then begin
    prerr_endline "bench: some theorem checks FAILED";
    exit 1
  end
