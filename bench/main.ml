(* Benchmark harness: one timed entry per reproduced figure/table.

   Part 1 measures the computation that regenerates each artifact —
   figure replays, theorem checks, quantitative sweeps — as a full
   distribution, not a point: each entry is sampled in calibrated
   batches until a time quota is met, and the per-run nanosecond
   samples yield mean/stddev/ci95/p50/p99 plus per-run allocation
   (minor words, major collections) read off the GC between batches.
   The record is written as bench schema v3 (`--json`, default
   `BENCH_checker.json`), one line is appended to `bench/history.jsonl`
   so the perf trajectory stays machine-readable, and a markdown
   report lands in `docs/bench-report.md` (`--report`).

   `--compare BASELINE.json --gate-pct P` turns the run into a perf
   gate: the per-entry delta table is printed (and appended to the
   markdown report), and the process exits non-zero when any entry's
   mean slowed by at least P% beyond the pooled ci95 noise band of the
   two records (`Stabexp.Benchcmp`). `--quick` shrinks the quotas for
   CI; `--micro-only` skips parts 2-4.

   Parts 2-4 print the artifacts themselves: figures, the per-theorem
   verdict tables and the E1-E4 stabilization-time tables recorded in
   EXPERIMENTS.md. The run aborts with a non-zero exit code if any
   theorem check fails, so `dune exec bench/main.exe` doubles as a
   repro gate. *)

module Json = Stabobs.Json
module Obs = Stabobs.Obs
module Dist = Stabobs.Dist
module Stats = Stabstats.Stats

(* --- command line --- *)

let json_path = ref "BENCH_checker.json"
let history_path = ref "bench/history.jsonl"
let report_path = ref "docs/bench-report.md"
let compare_path = ref ""
let gate_pct = ref 20.0
let quick = ref false
let micro_only = ref false

let speclist =
  [
    ("--json", Arg.Set_string json_path, "FILE bench record destination (schema 3)");
    ( "--history",
      Arg.Set_string history_path,
      "FILE history log to append to (\"\" disables)" );
    ( "--report",
      Arg.Set_string report_path,
      "FILE markdown report destination (\"\" disables)" );
    ( "--compare",
      Arg.Set_string compare_path,
      "FILE baseline bench record to gate against" );
    ( "--gate-pct",
      Arg.Set_float gate_pct,
      "P significant regressions under P percent do not gate (default 20)" );
    ("--quick", Arg.Set quick, " reduced sampling quotas (CI mode)");
    ("--micro-only", Arg.Set micro_only, " skip figure/theorem/experiment replay");
  ]

let usage = "bench/main.exe [--json FILE] [--compare BASELINE --gate-pct P] ..."

(* The resilience campaign of ISSUE 2: exact per-k recovery metrics on
   the packed graph (token ring, N = 7, k = 1..3) plus a 500-run
   availability estimate under periodic injection. *)
let faults_campaign () =
  let n = 7 in
  let p = Stabalgo.Token_ring.make ~n in
  let spec = Stabalgo.Token_ring.spec ~n in
  let space = Stabcore.Statespace.build p in
  let metrics =
    Stabcore.Resilience.analyze space Stabcore.Statespace.Central spec ~ks:[ 0; 1; 2; 3 ]
  in
  let plan = Stabcore.Faults.periodic p ~gap:50 ~faults:1 in
  let availability =
    Stabcore.Faults.availability_profile ~runs:500 ~horizon:2000
      (Stabrng.Rng.create 42) p
      (Stabcore.Scheduler.central_random ())
      spec ~plan
      ~init:(Stabalgo.Token_ring.legitimate_config ~n)
  in
  (metrics, availability)

let print_faults_campaign () =
  let metrics, availability = faults_campaign () in
  let t =
    Stabexp.Report.create
      ~title:"faults-campaign: token ring N=7, exact recovery radius + availability"
      ~columns:
        [ "k"; "faulty"; "worst case"; "prob-1"; "E[recovery] mean"; "E[recovery] max" ]
  in
  List.iter
    (fun (m : Stabcore.Resilience.metric) ->
      Stabexp.Report.add_row t
        [
          Stabexp.Report.cell_int m.Stabcore.Resilience.k;
          Stabexp.Report.cell_int m.Stabcore.Resilience.faulty_configs;
          (match m.Stabcore.Resilience.worst_case with
          | Some w -> Stabexp.Report.cell_int w
          | None -> "unbounded");
          Stabexp.Report.cell_bool m.Stabcore.Resilience.prob_one;
          (match m.Stabcore.Resilience.expected_mean with
          | Some v -> Stabexp.Report.cell_float v
          | None -> "-");
          (match m.Stabcore.Resilience.expected_max with
          | Some v -> Stabexp.Report.cell_float v
          | None -> "-");
        ])
    metrics;
  Stabexp.Report.print t;
  let r = Stabcore.Resilience.radius_of metrics in
  Printf.printf
    "   radius (k <= %d): adversarial %d, probabilistic %d\n\
    \   availability under periodic(gap=50,k=1), 500 runs: mean %.4f [%.4f, %.4f]\n\n"
    r.Stabcore.Resilience.max_k r.Stabcore.Resilience.adversarial
    r.Stabcore.Resilience.probabilistic availability.Stabstats.Stats.mean
    availability.Stabstats.Stats.ci95_low availability.Stabstats.Stats.ci95_high

(* Symmetry-quotient vs full-space analysis of the same instance. The
   quotient entries pay for group validation and canonicalization
   inside the timed region and still come out ahead whenever the
   validated group is nontrivial (token ring: the 8 rotations).
   leader-tree documents the sound fallback: Algorithm 2's local-index
   arithmetic leaves only the identity, so its quotient entry measures
   the full space plus the (cheap) rejection sweep — see
   docs/symmetry.md. *)
let analyze_token_ring ~quotient () =
  let n = 8 in
  let p = Stabalgo.Token_ring.make ~n in
  let space = Stabcore.Statespace.build p in
  let space = if quotient then Stabcore.Statespace.quotient space else space in
  Stabcore.Checker.analyze space Stabcore.Statespace.Distributed
    (Stabalgo.Token_ring.spec ~n)

let analyze_leader_tree ~quotient () =
  let g = Stabgraph.Graph.star 7 in
  let p = Stabalgo.Leader_tree.make g in
  let space = Stabcore.Statespace.build p in
  let space =
    if quotient then
      Stabcore.Statespace.quotient ~relabel:(Stabalgo.Leader_tree.relabel g) space
    else space
  in
  Stabcore.Checker.analyze space Stabcore.Statespace.Distributed
    (Stabalgo.Leader_tree.spec g)

(* The work-stealing expansion entries time the same full-space
   analysis at pinned pool widths, so a committed baseline records the
   machine's actual 1-domain vs 4-domain expansion scaling. A fresh
   [Statespace.build] per run gives the space a fresh uid, which
   bypasses the checker's (space, scheduler) expansion cache — every
   run pays for row expansion, the thing being measured. On a 1-core
   container the 4d entry measures pool overhead, not speedup; read
   the two together. *)
let expand_ws ~width () =
  Stabcore.Pool.set_width width;
  let n = 8 in
  let p = Stabalgo.Token_ring.make ~n in
  let space = Stabcore.Statespace.build p in
  ignore
    (Stabcore.Checker.analyze space Stabcore.Statespace.Distributed
       (Stabalgo.Token_ring.spec ~n))

(* The sparse-solver entries time one BSCC-blocked solve of the
   orbit-lumped token-ring chain at N = 10 (5934 states, 85 blocks) —
   the weak-stabilizing shape where the iterative sweeps actually
   iterate. The chain is built once, outside the timed region, by the
   harness's calibration call forcing the lazy cell. *)
let sparse_fixture =
  lazy
    (let n = 10 in
     let p = Stabalgo.Token_ring.make ~n in
     let spec = Stabalgo.Token_ring.spec ~n in
     let space = Stabcore.Statespace.quotient (Stabcore.Statespace.build p) in
     let legitimate = Stabcore.Statespace.legitimate_set space spec in
     let chain = Stabcore.Markov.of_space space Stabcore.Markov.Distributed_uniform in
     (chain, legitimate))

let markov_sparse kind () =
  let chain, legitimate = Lazy.force sparse_fixture in
  match Stabcore.Markov.sparse_hitting_times ~kind chain ~legitimate with
  | _, Stabcore.Markov.Converged _ -> ()
  | _, Stabcore.Markov.Max_sweeps _ -> failwith "bench: sparse solve did not converge"

(* Campaign resume planning, pure CPU: hash a 24-cell matrix, render
   half of it as checkpoint JSONL, parse the text back (the tolerant
   line-by-line path a resume takes), index it and decide which cells
   to skip. Guards the cost a `stabsim campaign` rerun pays before any
   analysis starts. *)
let campaign_fixture =
  lazy
    (let open Stabcampaign in
     let cell analysis topology sched =
       {
         Campaign.protocol = "token-ring";
         topology;
         transformed = false;
         sched;
         analysis;
         faults = Campaign.No_faults;
         runs = 100;
         max_steps = 100_000;
         max_configs = 1_000_000;
       }
     in
     let cells =
       List.concat_map
         (fun analysis ->
           List.concat_map
             (fun sched ->
               List.map
                 (fun topology -> cell analysis topology sched)
                 [ "ring:4"; "ring:5"; "ring:6"; "ring:7" ])
             [ Stabcore.Statespace.Central; Stabcore.Statespace.Distributed ])
         [ Campaign.Check; Campaign.Markov; Campaign.Montecarlo ]
     in
     let campaign =
       {
         Campaign.name = "bench";
         seed = 7;
         timeout_ms = None;
         retries = 2;
         backoff_ms = 100;
         cells;
       }
     in
     let finished =
       List.filteri (fun i _ -> i mod 2 = 0) cells
       |> List.map (fun c ->
              {
                Checkpoint.hash = Campaign.cell_hash c;
                label = Campaign.cell_label c;
                status = Checkpoint.Done;
                mode = "exact";
                retries = 0;
                payload = Stabobs.Json.Obj [ ("mean", Stabobs.Json.Float 1.5) ];
                error = None;
              })
     in
     let text =
       String.concat "\n"
         (List.map
            (fun r -> Stabobs.Json.to_string (Checkpoint.record_to_json r))
            finished)
     in
     (campaign, text))

let campaign_resume () =
  let open Stabcampaign in
  let campaign, text = Lazy.force campaign_fixture in
  let index = Checkpoint.index (Checkpoint.parse_string text) in
  let skip =
    List.filter
      (fun c -> Hashtbl.mem index (Campaign.cell_hash c))
      campaign.Campaign.cells
  in
  if List.length skip <> 12 then failwith "bench: campaign resume plan wrong"

(* The dark-telemetry gate: with no sink installed, a span is one
   atomic load and a branch, a counter add is dropped before touching
   domain-local state, and a dist record is dropped before its Welford
   update. Timings here must stay within noise of an empty loop — a
   regression means instrumentation started taxing the uninstrumented
   hot path. *)
let dark_dist = Dist.make "bench.dark"
let dark_gauge = Stabobs.Registry.Gauge.make "bench.dark-gauge"

let ignore_unit f () = ignore (f ())

let tests : (string * (unit -> unit)) list =
  [
    ("full-token-ring", ignore_unit (analyze_token_ring ~quotient:false));
    ("quotient-token-ring", ignore_unit (analyze_token_ring ~quotient:true));
    ("full-leader-tree", ignore_unit (analyze_leader_tree ~quotient:false));
    ("quotient-leader-tree", ignore_unit (analyze_leader_tree ~quotient:true));
    ("fig1-token-trace", ignore_unit (fun () -> Stabexp.Figures.fig1 ()));
    ("fig2-leader-convergence", ignore_unit Stabexp.Figures.fig2);
    ("fig3-sync-divergence", ignore_unit Stabexp.Figures.fig3);
    ("thm1-sync-equivalence", ignore_unit Stabexp.Theorems.theorem1);
    ( "thm2-weak-not-self",
      ignore_unit (fun () -> Stabexp.Theorems.theorem2 ~max_n:5 ~quotient:true ()) );
    ("thm3-impossibility", ignore_unit Stabexp.Theorems.theorem3);
    ( "thm4-leader-weak",
      ignore_unit (fun () -> Stabexp.Theorems.theorem4 ~max_n:5 ~quotient:true ()) );
    ("thm5-gouda-prob", ignore_unit Stabexp.Theorems.theorem5);
    ("thm6-gouda-vs-strong", ignore_unit Stabexp.Theorems.theorem6);
    ("thm7-markov-equivalence", ignore_unit Stabexp.Theorems.theorem7);
    ("thm8-transformer", ignore_unit Stabexp.Theorems.theorems8_9);
    ( "e1-token-sweep",
      ignore_unit (fun () -> Stabexp.Quantitative.e1_token_sweep ~quick:true ()) );
    ( "e2-leader-sweep",
      ignore_unit (fun () -> Stabexp.Quantitative.e2_leader_sweep ~quick:true ()) );
    ( "e3-transformer-overhead",
      ignore_unit (fun () -> Stabexp.Quantitative.e3_transformer_overhead ~quick:true ()) );
    ( "e4-scheduler-comparison",
      ignore_unit (fun () -> Stabexp.Quantitative.e4_scheduler_comparison ~quick:true ()) );
    ( "e5-convergence-radius",
      ignore_unit (fun () -> Stabexp.Quantitative.e5_convergence_radius ~quick:true ()) );
    ( "e7-convergence-curves",
      ignore_unit (fun () -> Stabexp.Quantitative.e7_convergence_curves ~quick:true ()) );
    ("p1-portfolio", ignore_unit Stabexp.Portfolio.classify);
    ("p2-taxonomy", ignore_unit Stabexp.Portfolio.taxonomy);
    ( "e9-sync-orbit-census",
      ignore_unit (fun () -> Stabexp.Quantitative.e9_sync_orbit_census ~quick:true ()) );
    ( "e8-dijkstra-threshold",
      ignore_unit (fun () -> Stabexp.Portfolio.dijkstra_k_threshold ~max_n:4 ()) );
    ("faults-campaign", ignore_unit faults_campaign);
    ("campaign-resume", campaign_resume);
    ("markov-sparse-gs", markov_sparse Stabcore.Markov.Gauss_seidel);
    ("markov-sparse-jacobi", markov_sparse Stabcore.Markov.Jacobi);
    ("expand-ws-1d", expand_ws ~width:1);
    ("expand-ws-4d", expand_ws ~width:4);
    ("obs-span-disabled", fun () -> Obs.span "bench.noop" ignore);
    ("obs-counter-disabled", fun () -> Obs.Counter.add Obs.configs_expanded 1);
    ("obs-dist-disabled", fun () -> Dist.record dark_dist 1.0);
    ("obs-gauge-disabled", fun () -> Stabobs.Registry.Gauge.set dark_gauge 1);
    ("obs-flight-disabled", fun () -> Stabobs.Flight.note "bench.noop");
  ]

(* --- the sampling harness --- *)

type measured = {
  summary : Stats.summary;  (* over ns-per-run samples *)
  p50 : float;
  p99 : float;
  total_runs : int;
  minor_words_per_run : float;
  major_per_run : float;
}

(* Each sample is one timed batch; the batch size is calibrated off the
   warm-up run so a sample covers ~5 ms of work, which keeps clock
   quantization out of the nanosecond-scale entries without costing the
   slow entries extra runs. Sampling stops once the quota has elapsed
   and at least [min_samples] samples exist. *)
let target_batch_ns = 5_000_000

let measure ~quota_ns ~min_samples f =
  let t0 = Obs.now_ns () in
  f ();
  let once = max 1 (Obs.now_ns () - t0) in
  let batch = max 1 (target_batch_ns / once) in
  let samples = ref [] in
  let nsamples = ref 0 in
  let total_runs = ref 0 in
  (* Gc.minor_words reads the allocation pointer (exact in native code,
     unlike quick_stat's minor_words, which lags until the next minor
     collection). *)
  let w0 = Gc.minor_words () in
  let g0 = Gc.quick_stat () in
  let started = Obs.now_ns () in
  let continue () =
    !nsamples < min_samples || Obs.now_ns () - started < quota_ns
  in
  while continue () do
    let s0 = Obs.now_ns () in
    for _ = 1 to batch do
      f ()
    done;
    let dur = Obs.now_ns () - s0 in
    samples := (float_of_int dur /. float_of_int batch) :: !samples;
    incr nsamples;
    total_runs := !total_runs + batch
  done;
  let w1 = Gc.minor_words () in
  let g1 = Gc.quick_stat () in
  let runs = float_of_int !total_runs in
  let xs = Array.of_list !samples in
  {
    summary = Stats.summarize xs;
    p50 = Stats.quantile xs 0.5;
    p99 = Stats.quantile xs 0.99;
    total_runs = !total_runs;
    minor_words_per_run = (w1 -. w0) /. runs;
    major_per_run =
      float_of_int (g1.Gc.major_collections - g0.Gc.major_collections) /. runs;
  }

let run_benchmarks () =
  let quota_ns = if !quick then 150_000_000 else 600_000_000 in
  let min_samples = if !quick then 5 else 8 in
  List.map
    (fun (name, f) -> ("repro/" ^ name, measure ~quota_ns ~min_samples f))
    tests
  |> List.sort compare

(* --- provenance --- *)

(* Both git probes degrade to the "unknown" / not-dirty fallback when
   the bench runs outside a repository (a release tarball, a bare
   container): provenance is best effort, the record is not. *)
let command_line cmd =
  match Unix.open_process_in cmd with
  | exception _ -> None
  | ic ->
    let line = try Some (input_line ic) with End_of_file -> None in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> line
    | _ -> None
    | exception _ -> None)

let git_commit () =
  Option.value ~default:"unknown"
    (command_line "git rev-parse --short HEAD 2>/dev/null")

let git_dirty () =
  (* porcelain prints one line per changed path; any output means the
     working tree differs from the stamped commit. *)
  match command_line "git status --porcelain 2>/dev/null" with
  | Some line -> String.length line > 0
  | None -> false

let iso_timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

(* --- schema v3 emission --- *)

(* One instrumented pass over the reference pipeline (token ring,
   N = 7: exhaustive verdicts, exact hitting times, 200 sampled runs)
   recorded through the telemetry sinks with GC sampling on — the
   per-phase time/allocation breakdown and the well-known sample
   distributions that ride along with the timing entries. *)
let capture_profile () =
  let profile = Obs.Profile.create () in
  Obs.install (Obs.Profile.sink profile);
  Obs.set_gc_sampling true;
  Obs.Counter.reset_all ();
  Dist.reset_all ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_gc_sampling false;
      Obs.clear ())
    (fun () ->
      let n = 7 in
      let p = Stabalgo.Token_ring.make ~n in
      let spec = Stabalgo.Token_ring.spec ~n in
      let space = Stabcore.Statespace.build p in
      ignore (Stabcore.Checker.analyze space Stabcore.Statespace.Distributed spec);
      let legitimate = Stabcore.Statespace.legitimate_set space spec in
      let chain = Stabcore.Markov.of_space space Stabcore.Markov.Distributed_uniform in
      ignore (Stabcore.Markov.expected_hitting_times chain ~legitimate);
      (* The sparse backend on the same chain, so the recorded profile
         carries its block spans, sweep counter, and residual
         distribution alongside the dense solve. *)
      ignore (Stabcore.Markov.sparse_hitting_times chain ~legitimate);
      ignore
        (Stabcore.Montecarlo.estimate ~runs:200 ~max_steps:1_000_000
           (Stabrng.Rng.create 42) p
           (Stabcore.Scheduler.distributed_random ())
           spec));
  let phases =
    List.map
      (fun (r : Obs.Profile.row) ->
        ( r.Obs.Profile.name,
          Json.Obj
            [
              ("count", Json.Int r.Obs.Profile.count);
              ("total_ns", Json.Int r.Obs.Profile.total_ns);
              ("max_ns", Json.Int r.Obs.Profile.max_ns);
              ("minor_words", Json.Int r.Obs.Profile.minor_words);
              ("major_collections", Json.Int r.Obs.Profile.major_collections);
            ] ))
      (Obs.Profile.rows profile)
  in
  let counters =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (Obs.Counter.snapshot ())
  in
  let dists =
    List.map
      (fun (name, (s : Dist.summary)) ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int s.Dist.count);
              ("mean", Json.Float s.Dist.mean);
              ("stddev", Json.Float s.Dist.stddev);
              ("min", Json.Float s.Dist.min);
              ("max", Json.Float s.Dist.max);
              ("p50", Json.Float s.Dist.p50);
              ("p95", Json.Float s.Dist.p95);
              ("p99", Json.Float s.Dist.p99);
            ] ))
      (Dist.snapshot ())
  in
  Json.Obj
    [
      ("phases", Json.Obj phases);
      ("counters", Json.Obj counters);
      ("dists", Json.Obj dists);
    ]

let artifact_json (m : measured) =
  Json.Obj
    [
      ( "ns",
        Json.Obj
          [
            ("mean", Json.Float m.summary.Stats.mean);
            ("stddev", Json.Float m.summary.Stats.stddev);
            ("ci95", Json.Float (Stats.ci95_halfwidth m.summary));
            ("p50", Json.Float m.p50);
            ("p99", Json.Float m.p99);
            ("samples", Json.Int m.summary.Stats.count);
            ("runs", Json.Int m.total_runs);
          ] );
      ( "mem",
        Json.Obj
          [
            ("minor_words_per_run", Json.Float m.minor_words_per_run);
            ("major_per_run", Json.Float m.major_per_run);
          ] );
    ]

let build_doc measured =
  let meta =
    Json.Obj
      [
        ("commit", Json.String (git_commit ()));
        ("dirty", Json.Bool (git_dirty ()));
        ("timestamp", Json.String (iso_timestamp ()));
        ("ocaml", Json.String Sys.ocaml_version);
        ("domains", Json.Int (Stabcore.Pool.width ()));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("quick", Json.Bool !quick);
      ]
  in
  let artifacts = List.map (fun (name, m) -> (name, artifact_json m)) measured in
  Json.Obj
    [
      ("schema", Json.Int 3);
      ("meta", meta);
      ("artifacts", Json.Obj artifacts);
      ("profile", capture_profile ());
    ]

let write_doc doc =
  let oc = open_out !json_path in
  output_string oc (Json.to_string ~minify:false doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote per-artifact timing distributions to %s)\n%!" !json_path;
  (* A baseline stamped from a dirty tree cannot be reproduced from its
     own meta.commit — don't let one slip into the repository quietly.
     Read the stamped meta rather than re-running git: the record just
     written is itself tracked, so a fresh porcelain check would always
     see a dirty tree and cry wolf. *)
  let stamped_dirty =
    match Option.bind (Json.member "meta" doc) (Json.member "dirty") with
    | Some (Json.Bool b) -> b
    | _ -> false
  in
  if stamped_dirty then
    Printf.eprintf
      "bench: WARNING: working tree is dirty — %s records meta.dirty=true and \
       must NOT be committed as a baseline; rerun from a clean checkout.\n\
       %!"
      !json_path

(* The trajectory log: one compact line per bench run, so regressions
   can be traced to a commit without diffing committed records. *)
let append_history doc =
  if !history_path <> "" then begin
    let line =
      Json.Obj
        (List.filter_map
           (fun key -> Option.map (fun v -> (key, v)) (Json.member key doc))
           [ "schema"; "meta"; "artifacts" ])
    in
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 !history_path
    in
    output_string oc (Json.to_string line);
    output_char oc '\n';
    close_out oc;
    Printf.printf "(appended this run to %s)\n\n%!" !history_path
  end

(* --- rendering --- *)

let pretty_float_ns ns = Obs.pretty_ns (int_of_float ns)

let timing_table measured =
  let table =
    Stabexp.Report.create ~title:"benchmark: time to regenerate each artifact"
      ~columns:[ "artifact"; "mean"; "ci95"; "p50"; "p99"; "minor w/run" ]
  in
  List.iter
    (fun (name, m) ->
      Stabexp.Report.add_row table
        [
          name;
          pretty_float_ns m.summary.Stats.mean;
          Printf.sprintf "±%s" (pretty_float_ns (Stats.ci95_halfwidth m.summary));
          pretty_float_ns m.p50;
          pretty_float_ns m.p99;
          Printf.sprintf "%.0f" m.minor_words_per_run;
        ])
    measured;
  table

let write_report doc measured compare_section =
  if !report_path <> "" then begin
    (* Provenance from the stamped meta: by the time the report is
       written the record file has already dirtied the tree. *)
    let meta_string key fallback =
      match Option.bind (Json.member "meta" doc) (Json.member key) with
      | Some (Json.String s) -> s
      | _ -> fallback
    in
    let meta_dirty =
      match Option.bind (Json.member "meta" doc) (Json.member "dirty") with
      | Some (Json.Bool b) -> b
      | _ -> false
    in
    let oc = open_out !report_path in
    Printf.fprintf oc
      "# Bench report\n\n\
       Generated by `bench/main.exe` at %s, commit `%s`%s (quick=%b). Each entry \
       is a distribution over calibrated-batch samples; `ci95` is the half-width \
       of the mean's 95%% confidence interval. Regenerate with `dune exec \
       bench/main.exe` (see docs/observability.md for the schema).\n\n%s\n"
      (meta_string "timestamp" (iso_timestamp ()))
      (meta_string "commit" (git_commit ()))
      (if meta_dirty then " (dirty)" else "")
      !quick
      (Stabexp.Report.to_markdown (timing_table measured));
    (match compare_section with
    | None -> ()
    | Some md -> Printf.fprintf oc "\n## Comparison\n\n%s\n" md);
    close_out oc;
    Printf.printf "(wrote markdown report to %s)\n\n%!" !report_path
  end

(* --- the compare gate --- *)

let run_compare doc =
  if !compare_path = "" then (None, false)
  else begin
    match Stabexp.Benchcmp.load !compare_path with
    | Error e ->
      Printf.eprintf "bench: cannot load baseline: %s\n%!" e;
      (None, true)
    | Ok baseline -> (
      match Stabexp.Benchcmp.of_json doc with
      | Error e ->
        Printf.eprintf "bench: candidate record malformed: %s\n%!" e;
        (None, true)
      | Ok candidate ->
        (match Stabexp.Benchcmp.cores_mismatch ~baseline ~candidate with
        | Some w -> Printf.eprintf "bench: WARNING: %s\n%!" w
        | None -> ());
        let deltas =
          Stabexp.Benchcmp.compare_docs ~gate_pct:!gate_pct ~baseline ~candidate
            ()
        in
        Stabexp.Report.print (Stabexp.Benchcmp.report deltas);
        let failures = Stabexp.Benchcmp.gate_failures deltas in
        let md =
          Stabexp.Benchcmp.markdown ~gate_pct:!gate_pct ~baseline ~candidate deltas
        in
        if failures <> [] then
          Printf.eprintf
            "bench: %d significant regression(s) beyond %.0f%%: %s\n%!"
            (List.length failures) !gate_pct
            (String.concat ", "
               (List.map (fun d -> d.Stabexp.Benchcmp.name) failures))
        else
          Printf.printf "bench gate: PASS (no significant regression ≥ %.0f%%)\n\n%!"
            !gate_pct;
        (Some md, failures <> []))
  end

(* --- parts 2-4: the reproduced artifacts --- *)

let print_figures () =
  let fig1 = Stabexp.Figures.fig1 () in
  print_string fig1.Stabexp.Figures.rendering;
  print_newline ();
  let fig2 = Stabexp.Figures.fig2 () in
  print_string fig2.Stabexp.Figures.rendering;
  print_newline ();
  let fig3 = Stabexp.Figures.fig3 () in
  print_string fig3.Stabexp.Figures.rendering;
  print_newline ()

let print_theorems () =
  let ok = ref true in
  List.iter
    (fun r ->
      Stabexp.Report.print (Stabexp.Theorems.report r);
      let holds = Stabexp.Theorems.all_hold r in
      if not holds then ok := false;
      Printf.printf "   => %s\n\n" (if holds then "VERIFIED" else "FAILED"))
    (Stabexp.Theorems.all ());
  !ok

let print_quantitative () =
  let _, t1 = Stabexp.Quantitative.e1_token_sweep ~quick:true () in
  Stabexp.Report.print t1;
  let _, t2 = Stabexp.Quantitative.e2_leader_sweep ~quick:true () in
  Stabexp.Report.print t2;
  let _, t3 = Stabexp.Quantitative.e3_transformer_overhead ~quick:true () in
  Stabexp.Report.print t3;
  let _, t4 = Stabexp.Quantitative.e4_scheduler_comparison ~quick:true () in
  Stabexp.Report.print t4;
  Stabexp.Report.print (Stabexp.Quantitative.e5_convergence_radius ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e6_steps_vs_rounds ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e7_convergence_curves ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e9_sync_orbit_census ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e10_fault_recovery ~quick:true ());
  Stabexp.Report.print (Stabexp.Quantitative.e11_availability ~quick:true ());
  Stabexp.Report.print (Stabexp.Portfolio.dijkstra_k_threshold ());
  let _, portfolio = Stabexp.Portfolio.classify () in
  Stabexp.Report.print portfolio;
  let _, taxonomy = Stabexp.Portfolio.taxonomy () in
  Stabexp.Report.print taxonomy;
  let _, crash = Stabexp.Portfolio.crash_resilience () in
  Stabexp.Report.print crash;
  let _, radii = Stabexp.Portfolio.resilience_radii () in
  Stabexp.Report.print radii;
  print_faults_campaign ()

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  print_endline "=== Part 1: micro-benchmarks (calibrated batches, distribution) ===\n";
  let measured = run_benchmarks () in
  Stabexp.Report.print (timing_table measured);
  (* The expand-ws entries pin the pool width; everything after part 1
     (reference-pipeline profile, figure/theorem replay) runs at the
     default again. *)
  Stabcore.Pool.set_width (Stabcore.Pool.default_width ());
  let doc = build_doc measured in
  write_doc doc;
  append_history doc;
  let compare_md, gate_failed = run_compare doc in
  write_report doc measured compare_md;
  let theorems_ok =
    if !micro_only then true
    else begin
      print_endline "=== Part 2: reproduced figures ===\n";
      print_figures ();
      print_endline "=== Part 3: theorem verdicts ===\n";
      let ok = print_theorems () in
      print_endline "=== Part 4: quantitative experiments (E1-E4) ===\n";
      print_quantitative ();
      ok
    end
  in
  if not theorems_ok then prerr_endline "bench: some theorem checks FAILED";
  if gate_failed then prerr_endline "bench: perf gate FAILED";
  if (not theorems_ok) || gate_failed then exit 1
